//! Event-stream consumers of the controller.
//!
//! The software layer emits typed [`HostEvent`]s in retire-order batches
//! (see `darco_host::events`). The controller composes its observers —
//! timing pipelines, the co-simulation checker, trace statistics — as
//! [`HostEventSink`]s in a [`SinkSet`], so each consumer sees the exact
//! same ordered stream regardless of how it is scheduled. That property
//! is what lets the timing simulator run *overlapped* with emulation
//! ([`TimingBackend::Threaded`]) or *fanned out* one worker per pipeline
//! ([`TimingBackend::Fanout`]) with results bit-identical to the inline
//! mode: the batches crossing the channels are the very batches the
//! inline sink would have consumed, in the same order.
//!
//! Batches cross threads as `Arc<[HostEvent]>`: the emulation thread
//! hands its staging buffer over once (see `EventBuffer`'s shared drain
//! path), and fanning out to N workers is N reference-count bumps, not
//! N copies.

use crate::checker::StateChecker;
use crate::system::{SystemConfig, Window};
use darco_host::{BlockId, DynInst, HostEvent, HostEventSink, Owner, TraceStatsSink};
use darco_timing::{BlockMemo, MemoStats, Pipeline, Stats};
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Pipeline snapshot at the last timeline-window boundary; deltas
/// against it form the next [`Window`].
#[derive(Debug, Clone, Copy, Default)]
struct WindowMark {
    guest_insts: u64,
    cycles: u64,
    app_insts: u64,
    tol_insts: u64,
}

/// Which slice of the retire stream a [`PipelineSink`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipelineRole {
    /// Every instruction; also owns the timeline sampling.
    Shared,
    /// Application instructions only (Fig. 8's app-alone counterfactual).
    AppOnly,
    /// Software-layer instructions only.
    TolOnly,
}

impl PipelineRole {
    fn thread_name(self) -> &'static str {
        match self {
            PipelineRole::Shared => "darco-timing-shared",
            PipelineRole::AppOnly => "darco-timing-app",
            PipelineRole::TolOnly => "darco-timing-tol",
        }
    }
}

/// One timing pipeline plus everything it needs to consume the event
/// stream on its own: the role filter and (for the shared pipeline) the
/// timeline sampling state. Being a self-contained [`HostEventSink`] is
/// what lets each pipeline migrate to its own worker under
/// [`TimingBackend::Fanout`].
#[derive(Debug)]
struct PipelineSink {
    role: PipelineRole,
    pipeline: Pipeline,
    timeline: Vec<Window>,
    last_mark: WindowMark,
    /// Block timing memo for `BlockRetire` macro-events; `None` expands
    /// every macro-event through the per-instruction oracle
    /// ([`TimingConfig::block_memo`]).
    ///
    /// [`TimingConfig::block_memo`]: darco_timing::TimingConfig::block_memo
    memo: Option<BlockMemo>,
}

impl PipelineSink {
    fn new(role: PipelineRole, cfg: &SystemConfig) -> PipelineSink {
        PipelineSink {
            role,
            pipeline: Pipeline::new(cfg.timing.clone()),
            timeline: Vec::new(),
            last_mark: WindowMark::default(),
            memo: cfg.timing.block_memo.then(BlockMemo::new),
        }
    }

    /// Consumes one `BlockRetire` macro-event: replay the memoized
    /// timing footprint when it provably applies, expand through the
    /// per-instruction pipeline otherwise. Macro-event streams carry
    /// application code only, so the TOL-only pipeline drops them
    /// whole.
    fn block_retire(&mut self, block: BlockId, insts: &Arc<[DynInst]>) {
        debug_assert!(
            insts.iter().all(|d| d.owner() == Owner::App),
            "macro-events carry application code only"
        );
        if self.role == PipelineRole::TolOnly {
            return;
        }
        match &mut self.memo {
            Some(memo) => memo.replay_or_record(&mut self.pipeline, block, insts),
            None => {
                for d in insts.iter() {
                    self.pipeline.retire(d);
                }
            }
        }
    }

    /// Closes the current timeline window at `total_guest` retired guest
    /// instructions, from the pipeline's incremental counters — no
    /// statistics clone per window.
    fn sample_window(&mut self, total_guest: u64) {
        let cycles = self.pipeline.cycles_so_far();
        let s = self.pipeline.stats();
        let app = s.owner_insts(Owner::App);
        let tol = s.owner_insts(Owner::Tol);
        let m = self.last_mark;
        self.timeline.push(Window {
            guest_insts: total_guest,
            cycles: cycles - m.cycles,
            app_insts: app - m.app_insts,
            tol_insts: tol - m.tol_insts,
        });
        self.last_mark =
            WindowMark { guest_insts: total_guest, cycles, app_insts: app, tol_insts: tol };
    }
}

impl HostEventSink for PipelineSink {
    fn consume(&mut self, batch: &[HostEvent]) {
        for e in batch {
            match e {
                HostEvent::Retire(d) => {
                    let mine = match self.role {
                        PipelineRole::Shared => true,
                        PipelineRole::AppOnly => d.owner() == Owner::App,
                        PipelineRole::TolOnly => d.owner() == Owner::Tol,
                    };
                    if mine {
                        self.pipeline.retire(d);
                    }
                }
                HostEvent::BlockRetire { block, insts, .. } => {
                    self.block_retire(*block, insts);
                }
                HostEvent::WindowMark { guest_insts }
                    if self.role == PipelineRole::Shared
                        && *guest_insts > self.last_mark.guest_insts =>
                {
                    self.sample_window(*guest_insts);
                }
                _ => {}
            }
        }
    }
}

/// Feeds retired instructions to the timing pipelines and samples
/// timeline windows at [`HostEvent::WindowMark`] boundaries.
///
/// Owns the shared pipeline plus the optional application-only and
/// TOL-only pipelines (the multi-pipeline methodology of Figs. 8–11) as
/// independently schedulable `PipelineSink` units: consumed here they
/// run in one pass, handed to [`FanoutTiming`] they each get a worker.
#[derive(Debug)]
pub struct TimingSink {
    shared: PipelineSink,
    app_only: Option<PipelineSink>,
    tol_only: Option<PipelineSink>,
}

impl TimingSink {
    /// Builds the pipeline set the configuration asks for.
    pub fn new(cfg: &SystemConfig) -> TimingSink {
        TimingSink {
            shared: PipelineSink::new(PipelineRole::Shared, cfg),
            app_only: cfg.app_only_pipeline.then(|| PipelineSink::new(PipelineRole::AppOnly, cfg)),
            tol_only: cfg.tol_only_pipeline.then(|| PipelineSink::new(PipelineRole::TolOnly, cfg)),
        }
    }

    /// Dissolves the sink into report material: shared stats, optional
    /// filtered stats, and the sampled timeline.
    pub fn into_parts(self) -> (Stats, Option<Stats>, Option<Stats>, Vec<Window>) {
        (
            self.shared.pipeline.snapshot(),
            self.app_only.as_ref().map(|u| u.pipeline.snapshot()),
            self.tol_only.as_ref().map(|u| u.pipeline.snapshot()),
            self.shared.timeline,
        )
    }

    /// Block-memo statistics merged across the attached pipelines
    /// (simulator-speed side only — never part of a serialized
    /// [`Report`](crate::Report)).
    pub fn memo_stats(&self) -> MemoStats {
        let mut s = MemoStats::default();
        for u in std::iter::once(&self.shared).chain(&self.app_only).chain(&self.tol_only) {
            if let Some(m) = &u.memo {
                s.merge(&m.stats());
            }
        }
        s
    }
}

impl HostEventSink for TimingSink {
    fn consume(&mut self, batch: &[HostEvent]) {
        // Single pass over the batch, routing each retirement to the
        // pipelines that want it — cheaper inline than one filtered pass
        // per unit.
        for e in batch {
            match e {
                HostEvent::Retire(d) => {
                    self.shared.pipeline.retire(d);
                    match d.owner() {
                        Owner::App => {
                            if let Some(u) = &mut self.app_only {
                                u.pipeline.retire(d);
                            }
                        }
                        Owner::Tol => {
                            if let Some(u) = &mut self.tol_only {
                                u.pipeline.retire(d);
                            }
                        }
                    }
                }
                HostEvent::BlockRetire { block, insts, .. } => {
                    // Application code only: the TOL-only pipeline (its
                    // `block_retire` is a no-op) is skipped outright.
                    self.shared.block_retire(*block, insts);
                    if let Some(u) = &mut self.app_only {
                        u.block_retire(*block, insts);
                    }
                }
                HostEvent::WindowMark { guest_insts }
                    if *guest_insts > self.shared.last_mark.guest_insts =>
                {
                    self.shared.sample_window(*guest_insts);
                }
                _ => {}
            }
        }
    }
}

/// Co-simulates against the authoritative emulator at every
/// [`HostEvent::StepBoundary`].
///
/// The boundary event carries the layer's emulated state and the running
/// guest-instruction total; the sink advances the authoritative side by
/// the delta since the previous boundary and compares architectural
/// state — no back-reference into the engine required.
#[derive(Debug)]
pub struct CheckerSink {
    name: String,
    checker: StateChecker,
    advanced: u64,
}

impl CheckerSink {
    /// Wraps the authoritative emulator; `name` labels panic messages.
    pub fn new(name: String, checker: StateChecker) -> CheckerSink {
        CheckerSink { name, checker, advanced: 0 }
    }

    /// Returns the authoritative emulator for end-of-run memory checks.
    pub fn into_inner(self) -> StateChecker {
        self.checker
    }
}

impl HostEventSink for CheckerSink {
    fn consume(&mut self, batch: &[HostEvent]) {
        for e in batch {
            if let HostEvent::StepBoundary { guest_insts, emulated } = e {
                let delta = guest_insts - self.advanced;
                self.checker
                    .advance(delta)
                    .unwrap_or_else(|e| panic!("{}: authoritative fault: {e}", self.name));
                self.checker
                    .check(emulated)
                    .unwrap_or_else(|e| panic!("{}: co-simulation failed: {e}", self.name));
                self.advanced = *guest_insts;
            }
        }
    }
}

/// How the timing pipelines are scheduled relative to functional
/// emulation. All three produce byte-identical reports; they differ only
/// in wall-clock overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TimingBackendKind {
    /// Resolve against the host at construction: [`Inline`] on a
    /// single-hardware-thread host (worker threads would only add
    /// channel overhead), [`Fanout`] otherwise.
    ///
    /// [`Inline`]: TimingBackendKind::Inline
    /// [`Fanout`]: TimingBackendKind::Fanout
    #[default]
    Auto,
    /// Timing consumes each batch on the emulation thread, as it flushes.
    Inline,
    /// All pipelines on one worker thread, overlapped with emulation.
    Threaded,
    /// One worker thread per pipeline, each fed the same shared batches.
    Fanout,
}

impl TimingBackendKind {
    /// Resolves [`TimingBackendKind::Auto`] against the host's
    /// available parallelism; concrete kinds pass through unchanged.
    pub fn resolve(self) -> TimingBackendKind {
        match self {
            TimingBackendKind::Auto => {
                if std::thread::available_parallelism().map_or(1, |n| n.get()) <= 1 {
                    TimingBackendKind::Inline
                } else {
                    TimingBackendKind::Fanout
                }
            }
            k => k,
        }
    }
}

/// How the [`TimingSink`] is scheduled relative to functional emulation.
#[derive(Debug)]
pub enum TimingBackend {
    /// Timing consumes each batch on the emulation thread, as it flushes.
    /// Boxed: the sink holds three full pipelines and would otherwise
    /// dwarf the threaded handles.
    Inline(Box<TimingSink>),
    /// Timing runs overlapped on one worker thread behind a bounded
    /// channel; the emulation thread only pays for the channel send.
    /// Identical batches in identical order make the results
    /// bit-identical to [`TimingBackend::Inline`].
    Threaded(ThreadedTiming),
    /// Each pipeline on its own worker thread, fed zero-copy by
    /// broadcasting the same `Arc<[HostEvent]>` batch to every worker.
    Fanout(FanoutTiming),
}

impl TimingBackend {
    /// Builds the backend the configuration asks for.
    pub fn new(cfg: &SystemConfig) -> TimingBackend {
        let sink = TimingSink::new(cfg);
        match cfg.timing_backend.resolve() {
            TimingBackendKind::Auto => unreachable!("resolve() returns a concrete kind"),
            TimingBackendKind::Inline => TimingBackend::Inline(Box::new(sink)),
            TimingBackendKind::Threaded => TimingBackend::Threaded(ThreadedTiming::spawn(sink)),
            TimingBackendKind::Fanout => TimingBackend::Fanout(FanoutTiming::spawn(sink)),
        }
    }

    /// Drains any in-flight work and returns the timing sink.
    ///
    /// # Panics
    ///
    /// Propagates a panic from a timing worker thread.
    pub fn finish(self) -> TimingSink {
        match self {
            TimingBackend::Inline(sink) => *sink,
            TimingBackend::Threaded(t) => t.join(),
            TimingBackend::Fanout(f) => f.join(),
        }
    }
}

impl HostEventSink for TimingBackend {
    fn consume(&mut self, batch: &[HostEvent]) {
        match self {
            TimingBackend::Inline(sink) => sink.consume(batch),
            TimingBackend::Threaded(t) => t.send(Arc::from(batch)),
            TimingBackend::Fanout(f) => f.send(Arc::from(batch)),
        }
    }

    fn wants_shared(&self) -> bool {
        !matches!(self, TimingBackend::Inline(_))
    }

    fn consume_shared(&mut self, batch: Arc<[HostEvent]>) {
        match self {
            TimingBackend::Inline(sink) => sink.consume(&batch),
            TimingBackend::Threaded(t) => t.send(batch),
            TimingBackend::Fanout(f) => f.send(batch),
        }
    }
}

/// Depth of the batch channel to each timing worker: enough to absorb
/// bursts, small enough to bound memory and keep back-pressure.
const TIMING_CHANNEL_DEPTH: usize = 8;

/// A [`TimingSink`] running on its own worker thread.
#[derive(Debug)]
pub struct ThreadedTiming {
    tx: Option<mpsc::SyncSender<Arc<[HostEvent]>>>,
    handle: Option<JoinHandle<TimingSink>>,
}

impl ThreadedTiming {
    /// Moves `sink` to a worker thread consuming batches off a bounded
    /// channel.
    pub fn spawn(mut sink: TimingSink) -> ThreadedTiming {
        let (tx, rx) = mpsc::sync_channel::<Arc<[HostEvent]>>(TIMING_CHANNEL_DEPTH);
        let handle = std::thread::Builder::new()
            .name("darco-timing".into())
            .spawn(move || {
                while let Ok(batch) = rx.recv() {
                    sink.consume(&batch);
                }
                sink
            })
            .expect("spawn timing worker");
        ThreadedTiming { tx: Some(tx), handle: Some(handle) }
    }

    fn send(&mut self, batch: Arc<[HostEvent]>) {
        let tx = self.tx.as_ref().expect("timing worker already joined");
        // A send error means the worker panicked; surface that panic
        // instead of a send error by joining.
        if tx.send(batch).is_err() {
            self.tx = None;
            let worker = self.handle.take().expect("timing worker handle");
            match worker.join() {
                Err(p) => std::panic::resume_unwind(p),
                Ok(_) => unreachable!("timing worker exited while the channel was open"),
            }
        }
    }

    fn join(mut self) -> TimingSink {
        drop(self.tx.take()); // close the channel: the worker drains and returns
        let worker = self.handle.take().expect("timing worker handle");
        match worker.join() {
            Ok(sink) => sink,
            Err(p) => std::panic::resume_unwind(p),
        }
    }
}

/// The fan-out backend: one worker thread per pipeline, each behind its
/// own bounded channel, all fed the same `Arc` batch (a send is one
/// refcount bump per worker). The slowest pipeline no longer rate-limits
/// the others, and back-pressure still bounds memory per channel.
#[derive(Debug)]
pub struct FanoutTiming {
    txs: Vec<mpsc::SyncSender<Arc<[HostEvent]>>>,
    handles: Vec<JoinHandle<PipelineSink>>,
}

impl FanoutTiming {
    /// Splits `sink` into its pipeline units and gives each a worker.
    pub fn spawn(sink: TimingSink) -> FanoutTiming {
        let TimingSink { shared, app_only, tol_only } = sink;
        let units = std::iter::once(shared).chain(app_only).chain(tol_only).collect::<Vec<_>>();
        let mut txs = Vec::with_capacity(units.len());
        let mut handles = Vec::with_capacity(units.len());
        for mut unit in units {
            let (tx, rx) = mpsc::sync_channel::<Arc<[HostEvent]>>(TIMING_CHANNEL_DEPTH);
            let handle = std::thread::Builder::new()
                .name(unit.role.thread_name().into())
                .spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        unit.consume(&batch);
                    }
                    unit
                })
                .expect("spawn timing worker");
            txs.push(tx);
            handles.push(handle);
        }
        FanoutTiming { txs, handles }
    }

    fn send(&mut self, batch: Arc<[HostEvent]>) {
        let mut dead = false;
        for tx in &self.txs {
            dead |= tx.send(batch.clone()).is_err();
        }
        if dead {
            // A closed channel means that worker panicked; close the
            // rest, drain them, and surface the panic.
            self.txs.clear();
            for h in self.handles.drain(..) {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
            unreachable!("timing worker exited while its channel was open");
        }
    }

    fn join(mut self) -> TimingSink {
        self.txs.clear(); // close every channel: workers drain and return
        let units = self
            .handles
            .drain(..)
            .map(|h| match h.join() {
                Ok(unit) => unit,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect::<Vec<_>>();
        let mut shared = None;
        let mut app_only = None;
        let mut tol_only = None;
        for u in units {
            match u.role {
                PipelineRole::Shared => shared = Some(u),
                PipelineRole::AppOnly => app_only = Some(u),
                PipelineRole::TolOnly => tol_only = Some(u),
            }
        }
        TimingSink { shared: shared.expect("fan-out always has a shared unit"), app_only, tol_only }
    }
}

/// The controller's full observer set, dispatching each batch to trace
/// statistics, the optional co-simulation checker, and the timing
/// backend — in that fixed order, so every consumer observes the same
/// stream prefix at any point. The checker stays inline by design: a
/// co-simulation divergence must fault at the boundary that caused it,
/// not batches later from a worker thread.
#[derive(Debug)]
pub struct SinkSet {
    /// Trace-level statistics (always on; costs one pass per batch).
    pub trace: TraceStatsSink,
    /// Co-simulation, when enabled.
    pub checker: Option<CheckerSink>,
    /// The timing pipelines, inline or overlapped.
    pub timing: TimingBackend,
}

impl HostEventSink for SinkSet {
    fn consume(&mut self, batch: &[HostEvent]) {
        self.trace.consume(batch);
        if let Some(chk) = &mut self.checker {
            chk.consume(batch);
        }
        self.timing.consume(batch);
    }

    fn wants_shared(&self) -> bool {
        // Shared (Arc) delivery pays off exactly when the timing backend
        // ships batches across threads; trace and checker borrow the
        // batch either way.
        self.timing.wants_shared()
    }

    fn consume_shared(&mut self, batch: Arc<[HostEvent]>) {
        self.trace.consume(&batch);
        if let Some(chk) = &mut self.checker {
            chk.consume(&batch);
        }
        self.timing.consume_shared(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::CpuState;
    use darco_host::{Component, DynInst, ExecClass};

    fn retire(pc: u64, component: Component) -> HostEvent {
        HostEvent::Retire(DynInst::plain(pc, ExecClass::SimpleInt, component))
    }

    fn test_cfg() -> SystemConfig {
        SystemConfig {
            app_only_pipeline: true,
            tol_only_pipeline: true,
            cosim: false,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn timing_sink_routes_by_owner_and_samples_windows() {
        let mut sink = TimingSink::new(&test_cfg());
        sink.consume(&[
            retire(0x100, Component::AppCode),
            retire(0x104, Component::TolIm),
            retire(0x108, Component::AppCode),
            HostEvent::WindowMark { guest_insts: 10 },
            retire(0x10c, Component::TolBbm),
            HostEvent::WindowMark { guest_insts: 20 },
            // A stale mark (same total) must not produce an empty window.
            HostEvent::WindowMark { guest_insts: 20 },
        ]);
        let (shared, app, tol, timeline) = sink.into_parts();
        assert_eq!(shared.total_insts(), 4);
        assert_eq!(app.unwrap().owner_insts(Owner::App), 2);
        assert_eq!(tol.unwrap().owner_insts(Owner::Tol), 2);
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[0].app_insts, 2);
        assert_eq!(timeline[0].tol_insts, 1);
        assert_eq!(timeline[1].tol_insts, 1);
    }

    fn mixed_batch() -> Vec<HostEvent> {
        (0..1000u64)
            .flat_map(|i| {
                let mut v = vec![retire(
                    i * 4,
                    if i % 3 == 0 { Component::TolOthers } else { Component::AppCode },
                )];
                if i % 100 == 99 {
                    v.push(HostEvent::WindowMark { guest_insts: i });
                }
                v
            })
            .collect()
    }

    fn backend_parts(
        kind: TimingBackendKind,
        chunk: usize,
    ) -> (Stats, Option<Stats>, Option<Stats>, Vec<Window>) {
        let cfg = SystemConfig { timing_backend: kind, ..test_cfg() };
        let mut backend = TimingBackend::new(&cfg);
        for c in mixed_batch().chunks(chunk) {
            backend.consume(c);
        }
        backend.finish().into_parts()
    }

    #[test]
    fn threaded_backend_matches_inline() {
        let (a, _, _, wa) = backend_parts(TimingBackendKind::Inline, 64);
        let (b, _, _, wb) = backend_parts(TimingBackendKind::Threaded, 64);
        assert_eq!(a.total_insts(), b.total_insts());
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(wa, wb);
    }

    #[test]
    fn fanout_backend_matches_inline_at_any_chunking() {
        let (a, app_a, tol_a, wa) = backend_parts(TimingBackendKind::Inline, 64);
        for chunk in [1, 7, 64, 4096] {
            let (b, app_b, tol_b, wb) = backend_parts(TimingBackendKind::Fanout, chunk);
            assert_eq!(a.total_insts(), b.total_insts(), "chunk {chunk}");
            assert_eq!(a.total_cycles, b.total_cycles, "chunk {chunk}");
            assert_eq!(app_a.as_ref().map(|s| s.total_cycles), app_b.map(|s| s.total_cycles));
            assert_eq!(tol_a.as_ref().map(|s| s.total_cycles), tol_b.map(|s| s.total_cycles));
            assert_eq!(wa, wb, "chunk {chunk}");
        }
    }

    #[test]
    fn shared_and_borrowed_delivery_agree() {
        let cfg = SystemConfig { timing_backend: TimingBackendKind::Fanout, ..test_cfg() };
        let mut borrowed = TimingBackend::new(&cfg);
        let mut shared = TimingBackend::new(&cfg);
        assert!(shared.wants_shared());
        for c in mixed_batch().chunks(128) {
            borrowed.consume(c);
            shared.consume_shared(Arc::from(c));
        }
        let (a, ..) = borrowed.finish().into_parts();
        let (b, ..) = shared.finish().into_parts();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.total_insts(), b.total_insts());
    }

    #[test]
    fn checker_sink_advances_by_boundary_deltas() {
        use darco_guest::asm::Asm;
        use darco_guest::{exec, Gpr, GuestMem, Inst};
        let mut a = Asm::new(0x100);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 7 });
        a.push(Inst::MovRI { dst: Gpr::Ebx, imm: 9 });
        a.push(Inst::Halt);
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        let initial = CpuState::at(p.base);

        // The "emulated" side: the same emulator stepped by hand.
        let mut emu = initial.clone();
        let mut emu_mem = mem.clone();
        let mut sink = CheckerSink::new("t".into(), StateChecker::new(initial, mem));

        exec::step(&mut emu, &mut emu_mem).unwrap();
        sink.consume(&[HostEvent::StepBoundary {
            guest_insts: 1,
            emulated: Box::new(emu.clone()),
        }]);
        exec::step(&mut emu, &mut emu_mem).unwrap();
        exec::step(&mut emu, &mut emu_mem).unwrap();
        sink.consume(&[HostEvent::StepBoundary {
            guest_insts: 3,
            emulated: Box::new(emu.clone()),
        }]);

        let chk = sink.into_inner();
        assert_eq!(chk.retired(), 3);
        assert_eq!(chk.checks(), 2);
    }

    #[test]
    #[should_panic(expected = "co-simulation failed")]
    fn checker_sink_panics_on_divergence() {
        use darco_guest::asm::Asm;
        use darco_guest::{Gpr, GuestMem, Inst};
        let mut a = Asm::new(0x100);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 7 });
        a.push(Inst::Halt);
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        let initial = CpuState::at(p.base);
        let mut wrong = initial.clone();
        wrong.set_gpr(Gpr::Eax, 999);
        let mut sink = CheckerSink::new("t".into(), StateChecker::new(initial, mem));
        sink.consume(&[HostEvent::StepBoundary { guest_insts: 1, emulated: Box::new(wrong) }]);
    }
}
