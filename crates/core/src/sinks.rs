//! Event-stream consumers of the controller.
//!
//! The software layer emits typed [`HostEvent`]s in retire-order batches
//! (see `darco_host::events`). The controller composes its observers —
//! timing pipelines, the co-simulation checker, trace statistics — as
//! [`HostEventSink`]s in a [`SinkSet`], so each consumer sees the exact
//! same ordered stream regardless of how it is scheduled. That property
//! is what lets the timing simulator run *overlapped* on a worker thread
//! ([`TimingBackend::Threaded`]) with results bit-identical to the
//! inline mode: the batches crossing the channel are the very batches
//! the inline sink would have consumed, in the same order.

use crate::checker::StateChecker;
use crate::system::{SystemConfig, Window};
use darco_host::{HostEvent, HostEventSink, Owner, TraceStatsSink};
use darco_timing::{Pipeline, Stats};
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Pipeline snapshot at the last timeline-window boundary; deltas
/// against it form the next [`Window`].
#[derive(Debug, Clone, Copy, Default)]
struct WindowMark {
    guest_insts: u64,
    cycles: u64,
    app_insts: u64,
    tol_insts: u64,
}

/// Feeds retired instructions to the timing pipelines and samples
/// timeline windows at [`HostEvent::WindowMark`] boundaries.
///
/// Owns the shared pipeline plus the optional application-only and
/// TOL-only pipelines (the multi-pipeline methodology of Figs. 8–11);
/// owning them is what lets the whole sink migrate to a worker thread.
#[derive(Debug)]
pub struct TimingSink {
    shared: Pipeline,
    app_only: Option<Pipeline>,
    tol_only: Option<Pipeline>,
    timeline: Vec<Window>,
    last_mark: WindowMark,
}

impl TimingSink {
    /// Builds the pipeline set the configuration asks for.
    pub fn new(cfg: &SystemConfig) -> TimingSink {
        TimingSink {
            shared: Pipeline::new(cfg.timing.clone()),
            app_only: cfg.app_only_pipeline.then(|| Pipeline::new(cfg.timing.clone())),
            tol_only: cfg.tol_only_pipeline.then(|| Pipeline::new(cfg.timing.clone())),
            timeline: Vec::new(),
            last_mark: WindowMark::default(),
        }
    }

    fn sample_window(&mut self, total_guest: u64) {
        let s = self.shared.snapshot();
        let app = s.owner_insts(Owner::App);
        let tol = s.owner_insts(Owner::Tol);
        let m = self.last_mark;
        self.timeline.push(Window {
            guest_insts: total_guest,
            cycles: s.total_cycles - m.cycles,
            app_insts: app - m.app_insts,
            tol_insts: tol - m.tol_insts,
        });
        self.last_mark = WindowMark {
            guest_insts: total_guest,
            cycles: s.total_cycles,
            app_insts: app,
            tol_insts: tol,
        };
    }

    /// Dissolves the sink into report material: shared stats, optional
    /// filtered stats, and the sampled timeline.
    pub fn into_parts(self) -> (Stats, Option<Stats>, Option<Stats>, Vec<Window>) {
        (
            self.shared.snapshot(),
            self.app_only.as_ref().map(|p| p.snapshot()),
            self.tol_only.as_ref().map(|p| p.snapshot()),
            self.timeline,
        )
    }
}

impl HostEventSink for TimingSink {
    fn consume(&mut self, batch: &[HostEvent]) {
        for e in batch {
            match e {
                HostEvent::Retire(d) => {
                    self.shared.retire(d);
                    match d.owner() {
                        Owner::App => {
                            if let Some(p) = &mut self.app_only {
                                p.retire(d);
                            }
                        }
                        Owner::Tol => {
                            if let Some(p) = &mut self.tol_only {
                                p.retire(d);
                            }
                        }
                    }
                }
                HostEvent::WindowMark { guest_insts }
                    if *guest_insts > self.last_mark.guest_insts =>
                {
                    self.sample_window(*guest_insts);
                }
                _ => {}
            }
        }
    }
}

/// Co-simulates against the authoritative emulator at every
/// [`HostEvent::StepBoundary`].
///
/// The boundary event carries the layer's emulated state and the running
/// guest-instruction total; the sink advances the authoritative side by
/// the delta since the previous boundary and compares architectural
/// state — no back-reference into the engine required.
#[derive(Debug)]
pub struct CheckerSink {
    name: String,
    checker: StateChecker,
    advanced: u64,
}

impl CheckerSink {
    /// Wraps the authoritative emulator; `name` labels panic messages.
    pub fn new(name: String, checker: StateChecker) -> CheckerSink {
        CheckerSink { name, checker, advanced: 0 }
    }

    /// Returns the authoritative emulator for end-of-run memory checks.
    pub fn into_inner(self) -> StateChecker {
        self.checker
    }
}

impl HostEventSink for CheckerSink {
    fn consume(&mut self, batch: &[HostEvent]) {
        for e in batch {
            if let HostEvent::StepBoundary { guest_insts, emulated } = e {
                let delta = guest_insts - self.advanced;
                self.checker
                    .advance(delta)
                    .unwrap_or_else(|e| panic!("{}: authoritative fault: {e}", self.name));
                self.checker
                    .check(emulated)
                    .unwrap_or_else(|e| panic!("{}: co-simulation failed: {e}", self.name));
                self.advanced = *guest_insts;
            }
        }
    }
}

/// How the [`TimingSink`] is scheduled relative to functional emulation.
#[derive(Debug)]
pub enum TimingBackend {
    /// Timing consumes each batch on the emulation thread, as it flushes.
    /// Boxed: the sink holds three full pipelines and would otherwise
    /// dwarf the `Threaded` handle.
    Inline(Box<TimingSink>),
    /// Timing runs overlapped on a worker thread behind a bounded
    /// channel; the emulation thread only pays for the batch copy and
    /// send. Identical batches in identical order make the results
    /// bit-identical to [`TimingBackend::Inline`].
    Threaded(ThreadedTiming),
}

impl TimingBackend {
    /// Builds the backend the configuration asks for.
    pub fn new(cfg: &SystemConfig) -> TimingBackend {
        let sink = TimingSink::new(cfg);
        if cfg.threaded_timing {
            TimingBackend::Threaded(ThreadedTiming::spawn(sink))
        } else {
            TimingBackend::Inline(Box::new(sink))
        }
    }

    /// Drains any in-flight work and returns the timing sink.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the timing worker thread.
    pub fn finish(self) -> TimingSink {
        match self {
            TimingBackend::Inline(sink) => *sink,
            TimingBackend::Threaded(t) => t.join(),
        }
    }
}

impl HostEventSink for TimingBackend {
    fn consume(&mut self, batch: &[HostEvent]) {
        match self {
            TimingBackend::Inline(sink) => sink.consume(batch),
            TimingBackend::Threaded(t) => t.send(batch),
        }
    }
}

/// Depth of the batch channel to the timing worker: enough to absorb
/// bursts, small enough to bound memory and keep back-pressure.
const TIMING_CHANNEL_DEPTH: usize = 8;

/// A [`TimingSink`] running on its own worker thread.
#[derive(Debug)]
pub struct ThreadedTiming {
    tx: Option<mpsc::SyncSender<Vec<HostEvent>>>,
    handle: Option<JoinHandle<TimingSink>>,
}

impl ThreadedTiming {
    /// Moves `sink` to a worker thread consuming batches off a bounded
    /// channel.
    pub fn spawn(mut sink: TimingSink) -> ThreadedTiming {
        let (tx, rx) = mpsc::sync_channel::<Vec<HostEvent>>(TIMING_CHANNEL_DEPTH);
        let handle = std::thread::Builder::new()
            .name("darco-timing".into())
            .spawn(move || {
                while let Ok(batch) = rx.recv() {
                    sink.consume(&batch);
                }
                sink
            })
            .expect("spawn timing worker");
        ThreadedTiming { tx: Some(tx), handle: Some(handle) }
    }

    fn send(&mut self, batch: &[HostEvent]) {
        let tx = self.tx.as_ref().expect("timing worker already joined");
        // A send error means the worker panicked; surface that panic
        // instead of a send error by joining.
        if tx.send(batch.to_vec()).is_err() {
            self.tx = None;
            let worker = self.handle.take().expect("timing worker handle");
            match worker.join() {
                Err(p) => std::panic::resume_unwind(p),
                Ok(_) => unreachable!("timing worker exited while the channel was open"),
            }
        }
    }

    fn join(mut self) -> TimingSink {
        drop(self.tx.take()); // close the channel: the worker drains and returns
        let worker = self.handle.take().expect("timing worker handle");
        match worker.join() {
            Ok(sink) => sink,
            Err(p) => std::panic::resume_unwind(p),
        }
    }
}

/// The controller's full observer set, dispatching each batch to trace
/// statistics, the optional co-simulation checker, and the timing
/// backend — in that fixed order, so every consumer observes the same
/// stream prefix at any point.
#[derive(Debug)]
pub struct SinkSet {
    /// Trace-level statistics (always on; costs one pass per batch).
    pub trace: TraceStatsSink,
    /// Co-simulation, when enabled.
    pub checker: Option<CheckerSink>,
    /// The timing pipelines, inline or overlapped.
    pub timing: TimingBackend,
}

impl HostEventSink for SinkSet {
    fn consume(&mut self, batch: &[HostEvent]) {
        self.trace.consume(batch);
        if let Some(chk) = &mut self.checker {
            chk.consume(batch);
        }
        self.timing.consume(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::CpuState;
    use darco_host::{Component, DynInst, ExecClass};

    fn retire(pc: u64, component: Component) -> HostEvent {
        HostEvent::Retire(DynInst::plain(pc, ExecClass::SimpleInt, component))
    }

    fn test_cfg() -> SystemConfig {
        SystemConfig {
            app_only_pipeline: true,
            tol_only_pipeline: true,
            cosim: false,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn timing_sink_routes_by_owner_and_samples_windows() {
        let mut sink = TimingSink::new(&test_cfg());
        sink.consume(&[
            retire(0x100, Component::AppCode),
            retire(0x104, Component::TolIm),
            retire(0x108, Component::AppCode),
            HostEvent::WindowMark { guest_insts: 10 },
            retire(0x10c, Component::TolBbm),
            HostEvent::WindowMark { guest_insts: 20 },
            // A stale mark (same total) must not produce an empty window.
            HostEvent::WindowMark { guest_insts: 20 },
        ]);
        let (shared, app, tol, timeline) = sink.into_parts();
        assert_eq!(shared.total_insts(), 4);
        assert_eq!(app.unwrap().owner_insts(Owner::App), 2);
        assert_eq!(tol.unwrap().owner_insts(Owner::Tol), 2);
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[0].app_insts, 2);
        assert_eq!(timeline[0].tol_insts, 1);
        assert_eq!(timeline[1].tol_insts, 1);
    }

    #[test]
    fn threaded_backend_matches_inline() {
        let cfg = test_cfg();
        let batch: Vec<HostEvent> = (0..1000u64)
            .map(|i| {
                retire(i * 4, if i % 3 == 0 { Component::TolOthers } else { Component::AppCode })
            })
            .collect();

        let mut inline = TimingBackend::Inline(Box::new(TimingSink::new(&cfg)));
        let mut threaded = TimingBackend::Threaded(ThreadedTiming::spawn(TimingSink::new(&cfg)));
        for chunk in batch.chunks(64) {
            inline.consume(chunk);
            threaded.consume(chunk);
        }
        let (a, _, _, _) = inline.finish().into_parts();
        let (b, _, _, _) = threaded.finish().into_parts();
        assert_eq!(a.total_insts(), b.total_insts());
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn checker_sink_advances_by_boundary_deltas() {
        use darco_guest::asm::Asm;
        use darco_guest::{exec, Gpr, GuestMem, Inst};
        let mut a = Asm::new(0x100);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 7 });
        a.push(Inst::MovRI { dst: Gpr::Ebx, imm: 9 });
        a.push(Inst::Halt);
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        let initial = CpuState::at(p.base);

        // The "emulated" side: the same emulator stepped by hand.
        let mut emu = initial.clone();
        let mut emu_mem = mem.clone();
        let mut sink = CheckerSink::new("t".into(), StateChecker::new(initial, mem));

        exec::step(&mut emu, &mut emu_mem).unwrap();
        sink.consume(&[HostEvent::StepBoundary {
            guest_insts: 1,
            emulated: Box::new(emu.clone()),
        }]);
        exec::step(&mut emu, &mut emu_mem).unwrap();
        exec::step(&mut emu, &mut emu_mem).unwrap();
        sink.consume(&[HostEvent::StepBoundary {
            guest_insts: 3,
            emulated: Box::new(emu.clone()),
        }]);

        let chk = sink.into_inner();
        assert_eq!(chk.retired(), 3);
        assert_eq!(chk.checks(), 2);
    }

    #[test]
    #[should_panic(expected = "co-simulation failed")]
    fn checker_sink_panics_on_divergence() {
        use darco_guest::asm::Asm;
        use darco_guest::{Gpr, GuestMem, Inst};
        let mut a = Asm::new(0x100);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 7 });
        a.push(Inst::Halt);
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        let initial = CpuState::at(p.base);
        let mut wrong = initial.clone();
        wrong.set_gpr(Gpr::Eax, 999);
        let mut sink = CheckerSink::new("t".into(), StateChecker::new(initial, mem));
        sink.consume(&[HostEvent::StepBoundary { guest_insts: 1, emulated: Box::new(wrong) }]);
    }
}
