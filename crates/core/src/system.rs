//! The DARCO system driver: software layer + authoritative emulator +
//! timing pipelines, run in lockstep.

use crate::checker::StateChecker;
use crate::sinks::{CheckerSink, SinkSet, TimingBackend, TimingBackendKind};
use darco_host::{HostEvent, HostEventSink, TraceStats, TraceStatsSink};
use darco_timing::{Stats, TimingConfig};
use darco_tol::{RunSummary, Tol, TolConfig};
use darco_workloads::{generate, BenchProfile, Workload};
use serde::{Deserialize, Serialize};

/// The paper's TOL configuration with the `BB/SBth` promotion threshold
/// scaled from 10 000 to 50, matching the ~2000× scaling of dynamic
/// instruction counts relative to the paper's 4-billion-instruction runs
/// (DESIGN.md §2). `IM/BBth` stays at 5 — cold code executes an
/// *absolute* handful of times regardless of run length.
pub fn scaled_tol_config() -> TolConfig {
    TolConfig { bb_sb_threshold: 50, ..TolConfig::default() }
}

/// System configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Software-layer parameters.
    pub tol: TolConfig,
    /// Host timing parameters (shared pipeline).
    pub timing: TimingConfig,
    /// Run co-simulation (authoritative emulator + state checks). Exact
    /// but roughly doubles functional work; figure sweeps disable it
    /// after the test suite has established equivalence.
    pub cosim: bool,
    /// Attach a second pipeline fed only application instructions
    /// (the "w/o interaction" APP run of Fig. 10).
    pub app_only_pipeline: bool,
    /// Attach a third pipeline fed only TOL instructions (Fig. 8's
    /// TOL-in-isolation study and Fig. 10's TOL run).
    pub tol_only_pipeline: bool,
    /// Guest-instruction budget per engine step (dispatch granularity of
    /// co-simulation checks).
    pub step_budget: u64,
    /// Hard cap on emulated guest instructions (0 = run to completion).
    pub max_guest_insts: u64,
    /// Sample a timeline window every this many guest instructions
    /// (0 disables). Windows expose the start-up vs steady-state
    /// transition the paper insists on capturing (Sec. II-B).
    pub window_guest_insts: u64,
    /// How the timing pipelines are scheduled: inline on the emulation
    /// thread, overlapped on one worker, fanned out one worker per
    /// pipeline behind bounded batch channels, or resolved automatically
    /// against the host's parallelism. Results are bit-identical across
    /// all backends (same batches, same order); only the scheduling
    /// changes.
    pub timing_backend: TimingBackendKind,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig {
            tol: scaled_tol_config(),
            timing: TimingConfig::default(),
            cosim: true,
            app_only_pipeline: false,
            tol_only_pipeline: false,
            step_budget: 20_000,
            max_guest_insts: 0,
            window_guest_insts: 0,
            timing_backend: TimingBackendKind::Auto,
        }
    }
}

/// One timeline window: deltas over a fixed span of guest instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Guest instructions retired by the end of this window.
    pub guest_insts: u64,
    /// Host cycles spent within the window.
    pub cycles: u64,
    /// Application host instructions within the window.
    pub app_insts: u64,
    /// Software-layer host instructions within the window.
    pub tol_insts: u64,
}

impl Window {
    /// Software-layer share of the window's host instructions.
    pub fn overhead_share(&self) -> f64 {
        let t = self.app_insts + self.tol_insts;
        if t == 0 {
            0.0
        } else {
            self.tol_insts as f64 / t as f64
        }
    }
}

/// Results of one system run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Workload name.
    pub name: String,
    /// Timing results of the shared (real) pipeline.
    pub timing: Stats,
    /// Timing results of the application-only pipeline, if attached.
    pub app_only: Option<Stats>,
    /// Timing results of the TOL-only pipeline, if attached.
    pub tol_only: Option<Stats>,
    /// Software-layer summary (mode distributions, counters).
    pub tol: RunSummary,
    /// Guest instructions retired.
    pub guest_insts: u64,
    /// State-checker comparisons performed (0 when co-sim is off).
    pub cosim_checks: u64,
    /// Static guest instructions of the generated program.
    pub static_insts: u32,
    /// Timeline windows (empty unless `window_guest_insts` was set).
    pub timeline: Vec<Window>,
    /// Trace-level statistics of the host-event stream (timing-model
    /// independent).
    pub trace: TraceStats,
}

/// A complete DARCO instance for one workload.
#[derive(Debug)]
pub struct System {
    name: String,
    cfg: SystemConfig,
    tol: Tol,
    emu_mem: darco_guest::GuestMem,
    checker: Option<StateChecker>,
    static_insts: u32,
    memo_stats: darco_timing::MemoStats,
}

impl System {
    /// Builds a system for a generated workload.
    pub fn new(w: Workload, cfg: SystemConfig) -> System {
        let mut tol = Tol::new(cfg.tol.clone(), w.entry);
        tol.set_state(&w.initial);
        // One switch gates the whole guest layer: the interpreter's
        // micro-op path (inside Tol), the emulated memory's width-native
        // access path, and the checker's authoritative side.
        let mut emu_mem = w.mem;
        emu_mem.set_fast_path(cfg.tol.guest_fast_path);
        let checker = cfg.cosim.then(|| {
            let mut chk = StateChecker::new(w.initial.clone(), emu_mem.clone());
            chk.set_fast_path(cfg.tol.guest_fast_path);
            chk
        });
        System {
            name: w.name,
            tol,
            emu_mem,
            checker,
            static_insts: w.static_insts,
            memo_stats: darco_timing::MemoStats::default(),
            cfg,
        }
    }

    /// Convenience: generates the profile's workload at scale 1.0 and
    /// builds a system with the default configuration.
    pub fn from_profile(profile: &BenchProfile) -> System {
        System::new(generate(profile, 1.0), SystemConfig::default())
    }

    /// The software layer, for inspection after a run — e.g. the
    /// wall-clock pass timings ([`Tol::analysis_ns`],
    /// [`Tol::pass_nanos`]) that are deliberately kept out of the
    /// serialized [`Report`].
    pub fn tol(&self) -> &Tol {
        &self.tol
    }

    /// Timing-side block-memo statistics of the last
    /// [`System::run_to_completion`] (merged across the attached
    /// pipelines). Simulator-speed material only — deliberately not part
    /// of the serialized [`Report`], which stays byte-identical across
    /// [`TimingConfig::block_memo`](darco_timing::TimingConfig::block_memo)
    /// settings. The engine-side counterpart is
    /// [`Tol::memo_stats`](darco_tol::Tol::memo_stats) via
    /// [`System::tol`].
    pub fn memo_stats(&self) -> darco_timing::MemoStats {
        self.memo_stats
    }

    /// Runs the workload to completion (or the configured cap) and
    /// returns the report.
    ///
    /// The controller only drives the engine and emits boundary events;
    /// every observer — timing pipelines, co-simulation checker, trace
    /// statistics — consumes the host-event stream through the
    /// [`SinkSet`], scheduled per [`SystemConfig::timing_backend`].
    ///
    /// # Panics
    ///
    /// Panics on guest decode faults or co-simulation divergence — both
    /// indicate an infrastructure bug, exactly as they would in DARCO.
    pub fn run_to_completion(&mut self) -> Report {
        let cap = if self.cfg.max_guest_insts == 0 { u64::MAX } else { self.cfg.max_guest_insts };
        let mut sinks = SinkSet {
            trace: TraceStatsSink::default(),
            checker: self.checker.take().map(|chk| CheckerSink::new(self.name.clone(), chk)),
            timing: TimingBackend::new(&self.cfg),
        };
        let mut total = 0u64;
        let mut last_window = 0u64;
        while !self.tol.is_done() && total < cap {
            let budget = self.cfg.step_budget.min(cap - total);
            let out = self
                .tol
                .step(&mut self.emu_mem, &mut sinks, budget)
                .unwrap_or_else(|e| panic!("{}: guest decode fault: {e}", self.name));
            total += out.guest_insts;
            if sinks.checker.is_some() {
                sinks.consume(&[HostEvent::StepBoundary {
                    guest_insts: total,
                    emulated: Box::new(self.tol.emulated_state()),
                }]);
            }
            let w = self.cfg.window_guest_insts;
            if w > 0 && total >= last_window + w {
                sinks.consume(&[HostEvent::WindowMark { guest_insts: total }]);
                last_window = total;
            }
        }
        if self.cfg.window_guest_insts > 0 && total > last_window {
            sinks.consume(&[HostEvent::WindowMark { guest_insts: total }]);
        }
        let SinkSet { trace, checker, timing } = sinks;
        let timing = timing.finish();
        self.checker = checker.map(CheckerSink::into_inner);
        if let Some(chk) = &self.checker {
            // End-of-run memory co-verification: every store the
            // translated code performed must match the authoritative
            // execution byte-for-byte.
            if let Err(addr) = chk.check_memory(&self.emu_mem) {
                panic!(
                    "{}: memory divergence at guest address {addr:#x}\n  \
                     hint: run `darco verify {}` to localize a miscompiling pass",
                    self.name, self.name
                );
            }
        }
        self.memo_stats = timing.memo_stats();
        let (shared, app_only, tol_only, timeline) = timing.into_parts();
        Report {
            name: self.name.clone(),
            timing: shared,
            app_only,
            tol_only,
            tol: self.tol.summary(),
            guest_insts: total,
            cosim_checks: self.checker.as_ref().map_or(0, |c| c.checks()),
            static_insts: self.static_insts,
            timeline,
            trace: trace.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_host::{Component, Owner};
    use darco_workloads::suites;

    fn quick_system(cfg: SystemConfig) -> System {
        let w = generate(&suites::quicktest_profile(), 0.3);
        System::new(w, cfg)
    }

    #[test]
    fn full_run_with_cosimulation() {
        let mut sys = quick_system(SystemConfig::default());
        let r = sys.run_to_completion();
        assert!(r.guest_insts > 10_000);
        assert!(r.cosim_checks > 0, "checker must run");
        assert!(r.timing.total_cycles > 0);
        assert!(r.tol.dyn_dist.iter().sum::<u64>() == r.guest_insts);
        // TOL overhead exists but the application dominates.
        let overhead = r.timing.tol_overhead_share();
        assert!((0.01..0.95).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn filtered_pipelines_partition_the_stream() {
        let cfg = SystemConfig {
            app_only_pipeline: true,
            tol_only_pipeline: true,
            cosim: false,
            ..SystemConfig::default()
        };
        let mut sys = quick_system(cfg);
        let r = sys.run_to_completion();
        let app = r.app_only.unwrap();
        let tol = r.tol_only.unwrap();
        assert_eq!(app.owner_insts(Owner::Tol), 0);
        assert_eq!(tol.owner_insts(Owner::App), 0);
        assert_eq!(
            app.owner_insts(Owner::App) + tol.owner_insts(Owner::Tol),
            r.timing.total_insts(),
            "filtered pipelines partition the shared stream"
        );
        // Without contention, each side finishes no slower than its
        // attributed share of the shared run.
        assert!(app.total_cycles <= r.timing.total_cycles);
        assert!(tol.total_cycles <= r.timing.total_cycles);
    }

    #[test]
    fn timeline_captures_startup_transient() {
        let cfg =
            SystemConfig { window_guest_insts: 10_000, cosim: false, ..SystemConfig::default() };
        let w = generate(&suites::quicktest_profile(), 1.0);
        let mut sys = System::new(w, cfg);
        let r = sys.run_to_completion();
        assert!(r.timeline.len() >= 5, "windows sampled: {}", r.timeline.len());
        // Window accounting is exhaustive: instruction deltas sum to the
        // run totals.
        let tol: u64 = r.timeline.iter().map(|w| w.tol_insts).sum();
        let app: u64 = r.timeline.iter().map(|w| w.app_insts).sum();
        assert_eq!(tol + app, r.timing.total_insts());
        // The start-up transient (Sec. II-B): the first window is
        // translation-dominated, the steady state is not.
        let first = r.timeline.first().unwrap().overhead_share();
        let last_quarter: Vec<_> = r.timeline.iter().skip(3 * r.timeline.len() / 4).collect();
        let steady = last_quarter.iter().map(|w| w.overhead_share()).sum::<f64>()
            / last_quarter.len() as f64;
        assert!(
            first > 2.0 * steady,
            "start-up ({first:.3}) must dwarf steady state ({steady:.3})"
        );
    }

    #[test]
    fn max_guest_insts_caps_the_run() {
        let cfg = SystemConfig { max_guest_insts: 5_000, cosim: true, ..SystemConfig::default() };
        let mut sys = quick_system(cfg);
        let r = sys.run_to_completion();
        assert!(r.guest_insts >= 5_000, "runs until the cap");
        assert!(r.guest_insts < 60_000, "stops near the cap, got {}", r.guest_insts);
    }

    #[test]
    fn component_times_cover_all_categories_eventually() {
        let mut sys = quick_system(SystemConfig { cosim: false, ..SystemConfig::default() });
        let r = sys.run_to_completion();
        for c in [Component::AppCode, Component::TolIm, Component::TolBbm, Component::TolOthers] {
            assert!(r.timing.component_insts(c) > 0, "component {c} never executed");
        }
    }
}
