//! Experiment drivers: one run per benchmark feeds every figure.
//!
//! The paper's evaluation (Sec. III) derives all of Figs. 5–11 from
//! instrumented runs of the 48 benchmarks. Here one *functional* run per
//! benchmark drives three timing pipelines at once — the shared (real)
//! machine, an application-only pipeline and a TOL-only pipeline — which
//! is exactly the methodology of Sec. III-C/III-D: "we ignore the
//! instruction stream of TOL in the timing simulator, thus devoting all
//! resources to the application. We repeat the same for TOL."
//!
//! Each `figN` function reduces [`BenchRun`]s to the rows/series the
//! corresponding figure plots.

use crate::sinks::TimingBackendKind;
use crate::system::{scaled_tol_config, Report, System, SystemConfig};
use darco_host::{Component, Owner};
use darco_timing::{BubbleCause, Stats, TimingConfig};
use darco_tol::TolConfig;
use darco_workloads::{generate, BenchProfile, Suite};
use serde::{Deserialize, Serialize};

/// Configuration of one experiment pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// Dynamic-length scale relative to each profile's `dyn_base`.
    pub scale: f64,
    /// Run the authoritative emulator and state checker alongside.
    pub cosim: bool,
    /// Software-layer parameters.
    pub tol: TolConfig,
    /// Host parameters.
    pub timing: TimingConfig,
    /// How the timing pipelines are scheduled (see
    /// [`SystemConfig::timing_backend`]); results are bit-identical
    /// across all backends.
    pub timing_backend: TimingBackendKind,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            scale: 2.0,
            cosim: false,
            tol: scaled_tol_config(),
            timing: TimingConfig::default(),
            timing_backend: TimingBackendKind::Inline,
        }
    }
}

impl RunConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> RunConfig {
        RunConfig { scale: 0.05, ..RunConfig::default() }
    }
}

/// One benchmark's complete measurement set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRun {
    /// Benchmark name.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// The system report (shared + filtered pipelines + TOL summary).
    pub report: Report,
    /// Observed dynamic/static instruction ratio.
    pub dyn_static_ratio: f64,
}

/// Runs one benchmark under the configuration.
pub fn run_bench(profile: &BenchProfile, cfg: &RunConfig) -> BenchRun {
    let w = generate(profile, cfg.scale);
    let sys_cfg = SystemConfig {
        tol: cfg.tol.clone(),
        timing: cfg.timing.clone(),
        cosim: cfg.cosim,
        app_only_pipeline: true,
        tol_only_pipeline: true,
        timing_backend: cfg.timing_backend,
        ..SystemConfig::default()
    };
    let mut sys = System::new(w, sys_cfg);
    let report = sys.run_to_completion();
    BenchRun {
        name: profile.name.clone(),
        suite: profile.suite,
        dyn_static_ratio: report.guest_insts as f64 / report.static_insts.max(1) as f64,
        report,
    }
}

/// Runs a set of benchmarks sequentially (one worker thread).
pub fn run_set(profiles: &[BenchProfile], cfg: &RunConfig) -> Vec<BenchRun> {
    run_set_parallel(profiles, cfg, 1)
}

/// Runs a set of benchmarks across `threads` worker threads (each
/// benchmark is an independent system, so this is embarrassingly
/// parallel). Results keep `profiles` order. `run_set` is the
/// single-threaded special case.
pub fn run_set_parallel(
    profiles: &[BenchProfile],
    cfg: &RunConfig,
    threads: usize,
) -> Vec<BenchRun> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<BenchRun>>> = profiles.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(p) = profiles.get(i) else { break };
                let run = run_bench(p, cfg);
                *results[i].lock().expect("poisoned result slot") = Some(run);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("worker filled every slot"))
        .collect()
}

// --------------------------------------------------------------------
// Figure 5: static and dynamic guest-code distribution across modes.
// --------------------------------------------------------------------

/// One bar of Fig. 5a/5b.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: Suite,
    /// Static share per mode `[IM, BBM, SBM]`, summing to 1.
    pub static_pct: [f64; 3],
    /// Dynamic share per mode `[IM, BBM, SBM]`, summing to 1.
    pub dyn_pct: [f64; 3],
}

fn normalize3(v: [u64; 3]) -> [f64; 3] {
    let t: u64 = v.iter().sum();
    if t == 0 {
        return [0.0; 3];
    }
    [v[0] as f64 / t as f64, v[1] as f64 / t as f64, v[2] as f64 / t as f64]
}

/// Builds Fig. 5 rows.
pub fn fig5(runs: &[BenchRun]) -> Vec<Fig5Row> {
    runs.iter()
        .map(|r| Fig5Row {
            name: r.name.clone(),
            suite: r.suite,
            static_pct: normalize3(r.report.tol.static_dist),
            dyn_pct: normalize3(r.report.tol.dyn_dist),
        })
        .collect()
}

/// Averages Fig. 5 rows per suite (plus the overall mean), in the
/// paper's order.
pub fn fig5_suite_averages(rows: &[Fig5Row]) -> Vec<(String, [f64; 3], [f64; 3])> {
    let mut out = Vec::new();
    for suite in Suite::ALL {
        let sel: Vec<&Fig5Row> = rows.iter().filter(|r| r.suite == suite).collect();
        if sel.is_empty() {
            continue;
        }
        let avg = |f: &dyn Fn(&Fig5Row) -> [f64; 3]| {
            let mut a = [0.0; 3];
            for r in &sel {
                let v = f(r);
                for i in 0..3 {
                    a[i] += v[i];
                }
            }
            a.iter_mut().for_each(|x| *x /= sel.len() as f64);
            a
        };
        out.push((suite.label().to_owned(), avg(&|r| r.static_pct), avg(&|r| r.dyn_pct)));
    }
    out
}

// --------------------------------------------------------------------
// Figure 6: execution time split into TOL and application.
// --------------------------------------------------------------------

/// One bar of Fig. 6 with its overlays.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: Suite,
    /// Fraction of execution time that is TOL overhead (IM included, as
    /// in the paper).
    pub overhead: f64,
    /// Fraction that is application progress.
    pub application: f64,
    /// Dynamic/static instruction ratio (log-scale overlay).
    pub dyn_static_ratio: f64,
    /// Superblocks created (log-scale overlay).
    pub sbm_invocations: u64,
}

/// Builds Fig. 6 rows.
pub fn fig6(runs: &[BenchRun]) -> Vec<Fig6Row> {
    runs.iter()
        .map(|r| {
            let overhead = r.report.timing.tol_overhead_share();
            Fig6Row {
                name: r.name.clone(),
                suite: r.suite,
                overhead,
                application: 1.0 - overhead,
                dyn_static_ratio: r.dyn_static_ratio,
                sbm_invocations: r.report.tol.counters.sbm_invocations,
            }
        })
        .collect()
}

/// Average TOL overhead per suite, Fig. 6's headline numbers
/// (paper: Media 28%, Physics 22%, INT 22%, FP 12%).
pub fn fig6_suite_averages(rows: &[Fig6Row]) -> Vec<(Suite, f64)> {
    Suite::ALL
        .iter()
        .filter_map(|s| {
            let sel: Vec<f64> = rows.iter().filter(|r| r.suite == *s).map(|r| r.overhead).collect();
            (!sel.is_empty()).then(|| (*s, sel.iter().sum::<f64>() / sel.len() as f64))
        })
        .collect()
}

// --------------------------------------------------------------------
// Figure 7: TOL time split into its modules.
// --------------------------------------------------------------------

/// The TOL components of Fig. 7, in legend order.
pub const FIG7_COMPONENTS: [Component; 6] = [
    Component::TolOthers,
    Component::TolIm,
    Component::TolBbm,
    Component::TolSbm,
    Component::TolChaining,
    Component::TolLookup,
];

/// One bar of Fig. 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: Suite,
    /// Share of *total execution time* per TOL component, in
    /// [`FIG7_COMPONENTS`] order (sums to the Fig. 6 overhead).
    pub shares: [f64; 6],
    /// Dynamic guest indirect branches (log-scale overlay).
    pub indirect_branches: u64,
}

/// Builds Fig. 7 rows.
pub fn fig7(runs: &[BenchRun]) -> Vec<Fig7Row> {
    runs.iter()
        .map(|r| {
            let mut shares = [0.0; 6];
            for (i, c) in FIG7_COMPONENTS.iter().enumerate() {
                shares[i] = r.report.timing.component_share(*c);
            }
            Fig7Row {
                name: r.name.clone(),
                suite: r.suite,
                shares,
                indirect_branches: r.report.tol.counters.indirect_branches,
            }
        })
        .collect()
}

// --------------------------------------------------------------------
// Figure 8: TOL performance characteristics in isolation.
// --------------------------------------------------------------------

/// One point set of Fig. 8 (from the TOL-only pipeline).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: Suite,
    /// TOL instructions per cycle.
    pub ipc: f64,
    /// TOL L1-D miss rate.
    pub d_miss_rate: f64,
    /// TOL L1-I miss rate.
    pub i_miss_rate: f64,
    /// TOL branch misprediction rate.
    pub mispredict_rate: f64,
}

/// Builds Fig. 8 rows.
///
/// # Panics
///
/// Panics if the runs were produced without a TOL-only pipeline.
pub fn fig8(runs: &[BenchRun]) -> Vec<Fig8Row> {
    runs.iter()
        .map(|r| {
            let s = r.report.tol_only.as_ref().expect("TOL-only pipeline attached");
            Fig8Row {
                name: r.name.clone(),
                suite: r.suite,
                ipc: s.ipc(),
                d_miss_rate: s.d_miss_rate(Owner::Tol),
                i_miss_rate: s.i_miss_rate(Owner::Tol),
                mispredict_rate: s.mispredict_rate(Owner::Tol),
            }
        })
        .collect()
}

// --------------------------------------------------------------------
// Figure 9: cycle breakdown into instructions and bubble sources,
// split between TOL and the application.
// --------------------------------------------------------------------

/// One stacked bar of Fig. 9: ten categories as fractions of execution
/// time, bottom-to-top in the paper's legend order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Bar label (benchmark or suite average).
    pub label: String,
    /// `[TOL D$, APP D$, TOL I$, APP I$, TOL branch, APP branch,
    ///   TOL sched, APP sched, TOL insts, APP insts]`.
    pub categories: [f64; 10],
}

fn fig9_categories(s: &Stats) -> [f64; 10] {
    let t = s.attributed_time().max(1e-9);
    let b = |o: Owner, c: BubbleCause| s.owner_bubbles(o, c) / t;
    let insts = |o: Owner| s.owner_insts(o) as f64 / s.issue_width.max(1) as f64 / t;
    [
        b(Owner::Tol, BubbleCause::DCacheMiss),
        b(Owner::App, BubbleCause::DCacheMiss),
        b(Owner::Tol, BubbleCause::ICacheMiss),
        b(Owner::App, BubbleCause::ICacheMiss),
        b(Owner::Tol, BubbleCause::Branch),
        b(Owner::App, BubbleCause::Branch),
        b(Owner::Tol, BubbleCause::Scheduling),
        b(Owner::App, BubbleCause::Scheduling),
        insts(Owner::Tol),
        insts(Owner::App),
    ]
}

/// Builds Fig. 9 rows for the given runs (callers pass the four outliers
/// and/or whole suites).
pub fn fig9(runs: &[BenchRun]) -> Vec<Fig9Row> {
    runs.iter()
        .map(|r| Fig9Row { label: r.name.clone(), categories: fig9_categories(&r.report.timing) })
        .collect()
}

/// Suite-average Fig. 9 bars.
pub fn fig9_suite_averages(runs: &[BenchRun]) -> Vec<Fig9Row> {
    Suite::ALL
        .iter()
        .filter_map(|suite| {
            let sel: Vec<[f64; 10]> = runs
                .iter()
                .filter(|r| r.suite == *suite)
                .map(|r| fig9_categories(&r.report.timing))
                .collect();
            if sel.is_empty() {
                return None;
            }
            let mut avg = [0.0; 10];
            for c in &sel {
                for i in 0..10 {
                    avg[i] += c[i];
                }
            }
            avg.iter_mut().for_each(|x| *x /= sel.len() as f64);
            Some(Fig9Row { label: suite.label().to_owned(), categories: avg })
        })
        .collect()
}

// --------------------------------------------------------------------
// Figure 10: performance without interaction, relative to with.
// --------------------------------------------------------------------

/// One bar pair of Fig. 10.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Bar label.
    pub label: String,
    /// Application cycles without interaction ÷ with (≤ 1).
    pub app_rel: f64,
    /// TOL cycles without interaction ÷ with (≤ 1).
    pub tol_rel: f64,
}

/// Execution time attributed to one owner in the shared run.
fn owner_time(s: &Stats, o: Owner) -> f64 {
    s.owner_insts(o) as f64 / s.issue_width.max(1) as f64 + s.owner_bubble_total(o)
}

fn fig10_row(label: String, r: &Report) -> Fig10Row {
    let app_alone = r.app_only.as_ref().expect("app-only pipeline attached");
    let tol_alone = r.tol_only.as_ref().expect("TOL-only pipeline attached");
    let shared_app = owner_time(&r.timing, Owner::App).max(1e-9);
    let shared_tol = owner_time(&r.timing, Owner::Tol).max(1e-9);
    Fig10Row {
        label,
        app_rel: (owner_time(app_alone, Owner::App) / shared_app).min(1.5),
        tol_rel: (owner_time(tol_alone, Owner::Tol) / shared_tol).min(1.5),
    }
}

/// Builds per-benchmark Fig. 10 rows.
pub fn fig10(runs: &[BenchRun]) -> Vec<Fig10Row> {
    runs.iter().map(|r| fig10_row(r.name.clone(), &r.report)).collect()
}

/// Suite-average Fig. 10 rows.
pub fn fig10_suite_averages(runs: &[BenchRun]) -> Vec<Fig10Row> {
    Suite::ALL
        .iter()
        .filter_map(|suite| {
            let sel: Vec<Fig10Row> = runs
                .iter()
                .filter(|r| r.suite == *suite)
                .map(|r| fig10_row(r.name.clone(), &r.report))
                .collect();
            if sel.is_empty() {
                return None;
            }
            let n = sel.len() as f64;
            Some(Fig10Row {
                label: suite.label().to_owned(),
                app_rel: sel.iter().map(|r| r.app_rel).sum::<f64>() / n,
                tol_rel: sel.iter().map(|r| r.tol_rel).sum::<f64>() / n,
            })
        })
        .collect()
}

// --------------------------------------------------------------------
// Figure 11: potential gains per resource if interaction vanished.
// --------------------------------------------------------------------

/// One bar group of Fig. 11 (for one owner).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Bar label.
    pub label: String,
    /// Potential improvement per cause `[D$, I$, sched, branch]` as a
    /// fraction of the shared run's total time (can be slightly negative
    /// when isolation costs locality, as in the paper's plots).
    pub gains: [f64; 4],
}

const FIG11_CAUSES: [BubbleCause; 4] = [
    BubbleCause::DCacheMiss,
    BubbleCause::ICacheMiss,
    BubbleCause::Scheduling,
    BubbleCause::Branch,
];

fn fig11_row(label: String, shared: &Stats, alone: &Stats, owner: Owner) -> Fig11Row {
    let total = shared.attributed_time().max(1e-9);
    let mut gains = [0.0; 4];
    for (i, c) in FIG11_CAUSES.iter().enumerate() {
        gains[i] = (shared.owner_bubbles(owner, *c) - alone.owner_bubbles(owner, *c)) / total;
    }
    Fig11Row { label, gains }
}

/// Builds Fig. 11a (TOL side) rows.
pub fn fig11_tol(runs: &[BenchRun]) -> Vec<Fig11Row> {
    runs.iter()
        .map(|r| {
            fig11_row(
                r.name.clone(),
                &r.report.timing,
                r.report.tol_only.as_ref().expect("TOL-only pipeline"),
                Owner::Tol,
            )
        })
        .collect()
}

/// Builds Fig. 11b (application side) rows.
pub fn fig11_app(runs: &[BenchRun]) -> Vec<Fig11Row> {
    runs.iter()
        .map(|r| {
            fig11_row(
                r.name.clone(),
                &r.report.timing,
                r.report.app_only.as_ref().expect("app-only pipeline"),
                Owner::App,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_workloads::suites;

    fn quick_runs() -> Vec<BenchRun> {
        let mut p1 = suites::quicktest_profile();
        p1.name = "q1".into();
        let mut p2 = suites::quicktest_profile();
        p2.name = "q2".into();
        p2.suite = Suite::SpecFp;
        p2.fp_fraction = 0.4;
        p2.seed = 11;
        run_set(&[p1, p2], &RunConfig::quick())
    }

    #[test]
    fn figure_builders_produce_consistent_shares() {
        let runs = quick_runs();
        assert_eq!(runs.len(), 2);

        let f5 = fig5(&runs);
        for row in &f5 {
            let s: f64 = row.static_pct.iter().sum();
            let d: f64 = row.dyn_pct.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "static shares sum to 1");
            assert!((d - 1.0).abs() < 1e-9, "dynamic shares sum to 1");
        }
        assert!(!fig5_suite_averages(&f5).is_empty());

        let f6 = fig6(&runs);
        for row in &f6 {
            assert!((row.overhead + row.application - 1.0).abs() < 1e-9);
            assert!(row.overhead > 0.0 && row.overhead < 1.0);
        }
        let avgs = fig6_suite_averages(&f6);
        assert_eq!(avgs.len(), 2);

        let f7 = fig7(&runs);
        for (r7, r6) in f7.iter().zip(f6.iter()) {
            let tol_sum: f64 = r7.shares.iter().sum();
            assert!(
                (tol_sum - r6.overhead).abs() < 1e-6,
                "Fig 7 shares must sum to the Fig 6 overhead"
            );
        }

        let f8 = fig8(&runs);
        for row in &f8 {
            assert!(row.ipc > 0.3 && row.ipc < 2.0, "TOL ipc {}", row.ipc);
            assert!(row.d_miss_rate >= 0.0 && row.d_miss_rate <= 1.0);
        }

        let f9 = fig9(&runs);
        for row in &f9 {
            let total: f64 = row.categories.iter().sum();
            assert!((total - 1.0).abs() < 0.02, "Fig 9 stacks to ~100%: {total}");
        }
        assert_eq!(fig9_suite_averages(&runs).len(), 2);

        let f10 = fig10(&runs);
        for row in &f10 {
            assert!(row.app_rel > 0.3 && row.app_rel <= 1.5, "{}", row.app_rel);
            assert!(row.tol_rel > 0.3 && row.tol_rel <= 1.5, "{}", row.tol_rel);
        }

        let f11a = fig11_tol(&runs);
        let f11b = fig11_app(&runs);
        for row in f11a.iter().chain(f11b.iter()) {
            for g in row.gains {
                assert!(g.abs() < 0.6, "gain out of plausible range: {g}");
            }
        }
    }

    #[test]
    fn parallel_runner_matches_sequential() {
        let mut a = suites::quicktest_profile();
        a.name = "p1".into();
        let mut b = suites::quicktest_profile();
        b.name = "p2".into();
        b.seed = 77;
        let profiles = vec![a, b];
        let cfg = RunConfig::quick();
        let seq = run_set(&profiles, &cfg);
        let par = run_set_parallel(&profiles, &cfg, 3);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.name, p.name, "order preserved");
            assert_eq!(s.report.guest_insts, p.report.guest_insts);
            assert_eq!(s.report.timing.total_cycles, p.report.timing.total_cycles);
        }
    }

    #[test]
    fn interaction_hurts_at_least_somewhere() {
        let runs = quick_runs();
        let f10 = fig10(&runs);
        // Isolation helps on average; at the tiny test scale the
        // attribution split is noisy, so allow a margin.
        let mean: f64 =
            f10.iter().map(|r| (r.app_rel + r.tol_rel) / 2.0).sum::<f64>() / f10.len() as f64;
        assert!(mean <= 1.10, "isolated runs should not be slower on average: {mean}");
    }
}
