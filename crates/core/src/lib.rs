//! # darco-core — the DARCO controller
//!
//! Ties the four components of the paper's Fig. 2 together:
//!
//! * the **x86 Component** — the authoritative functional emulator
//!   ([`checker::StateChecker`] owns its state and memory),
//! * the **Co-design Component** — the software layer
//!   ([`darco_tol::Tol`]) executing against the *emulated* guest state
//!   and memory,
//! * the **Timing Simulator** — one or more [`darco_timing::Pipeline`]s
//!   fed from the retired host-instruction stream (the multi-pipeline
//!   trick lets one functional run drive the shared, application-only
//!   and TOL-only timing models of Figs. 8–11 simultaneously),
//! * the **Controller** — [`System`], which steps the co-design
//!   component, advances the authoritative emulator by the same number
//!   of guest instructions, and co-simulates (compares architectural
//!   state) at every dispatch boundary.
//!
//! [`experiments`] builds the per-figure datasets on top; the `figures`
//! binary in `crates/bench` renders them.
//!
//! ```
//! use darco_core::{System, SystemConfig};
//! use darco_workloads::{generate, suites};
//!
//! let workload = generate(&suites::quicktest_profile(), 0.05);
//! let mut system = System::new(workload, SystemConfig::default());
//! let report = system.run_to_completion(); // co-simulation checked
//! assert!(report.timing.total_cycles > 0);
//! assert!(report.cosim_checks > 0);
//! ```

pub mod checker;
pub mod experiments;
pub mod report;
pub mod sinks;
pub mod system;

pub use checker::{Divergence, StateChecker};
pub use experiments::{run_bench, BenchRun, RunConfig};
pub use sinks::{
    CheckerSink, FanoutTiming, SinkSet, ThreadedTiming, TimingBackend, TimingBackendKind,
    TimingSink,
};
pub use system::{scaled_tol_config, Report, System, SystemConfig, Window};
