//! Plain-text rendering helpers for the figure harness.

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Renders an aligned text table.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: Vec<String>| {
        let formatted: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        out.push_str(&formatted.join("  "));
        out.push('\n');
    };
    line(&mut out, headers.iter().map(|h| h.to_string()).collect());
    line(&mut out, widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(&mut out, r.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.123), " 12.3%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "all lines same width");
        assert!(lines[2].ends_with("1"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
