//! Co-simulation: the authoritative x86 Component and the state checker.
//!
//! DARCO keeps two independent executions of the guest program (paper
//! Fig. 2): the authoritative functional emulator, and the emulated
//! state maintained by the software layer. The checker advances the
//! authoritative side by the same number of guest instructions the layer
//! just retired and compares architectural state — the co-simulation
//! debugging technique the paper inherits from Transmeta (ref. \[15\]).

use darco_guest::uops::ExecCtx;
use darco_guest::{exec, CpuState, DecodeError, GuestMem};
use std::fmt;

/// A detected divergence between the two executions.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Guest instructions retired when the mismatch was found.
    pub at_guest_inst: u64,
    /// The authoritative state.
    pub authoritative: CpuState,
    /// The software layer's emulated state.
    pub emulated: CpuState,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "state divergence after {} guest instructions:\n  authoritative: {}\n  emulated:      {}\n  \
             hint: run `darco verify <benchmark>` to check every optimization pass\n  \
             (structural invariants + translation validation) and localize a miscompile",
            self.at_guest_inst, self.authoritative, self.emulated
        )
    }
}

impl std::error::Error for Divergence {}

/// The authoritative emulator plus comparison logic.
#[derive(Debug, Clone)]
pub struct StateChecker {
    cpu: CpuState,
    mem: GuestMem,
    retired: u64,
    checks: u64,
    /// Micro-op fast path for the authoritative side
    /// (`--guest-fast-path`); `None` runs the byte-equality oracle.
    /// Lazy flags are forced before every comparison, so the observable
    /// states are bit-identical either way.
    fast: Option<ExecCtx>,
}

impl StateChecker {
    /// Creates the authoritative side from the initial program state and
    /// a *private copy* of guest memory (oracle execution path; see
    /// [`StateChecker::set_fast_path`]).
    pub fn new(initial: CpuState, mem: GuestMem) -> StateChecker {
        StateChecker { cpu: initial, mem, retired: 0, checks: 0, fast: None }
    }

    /// Switches the authoritative emulator between the guest layer's
    /// micro-op fast path and the decode-per-step oracle. Also gates
    /// the private memory copy's width-native access path, keeping the
    /// whole authoritative side on one setting.
    pub fn set_fast_path(&mut self, on: bool) {
        self.mem.set_fast_path(on);
        self.fast = on.then(ExecCtx::new);
    }

    /// Advances the authoritative emulator by `n` guest instructions.
    ///
    /// # Errors
    ///
    /// Propagates decode faults (which the emulated side would hit too).
    pub fn advance(&mut self, n: u64) -> Result<(), DecodeError> {
        for _ in 0..n {
            if self.cpu.halted {
                break;
            }
            match self.fast.as_mut() {
                Some(ctx) => {
                    ctx.step(&mut self.cpu, &mut self.mem)?;
                }
                None => {
                    exec::step(&mut self.cpu, &mut self.mem)?;
                }
            }
            self.retired += 1;
        }
        Ok(())
    }

    /// Compares the emulated state against the authoritative one,
    /// materializing any lazy flag definition first.
    ///
    /// # Errors
    ///
    /// Returns the full [`Divergence`] on mismatch.
    pub fn check(&mut self, emulated: &CpuState) -> Result<(), Box<Divergence>> {
        if let Some(ctx) = self.fast.as_mut() {
            ctx.force_flags(&mut self.cpu);
        }
        self.checks += 1;
        if self.cpu.arch_eq(emulated) {
            Ok(())
        } else {
            Err(Box::new(Divergence {
                at_guest_inst: self.retired,
                authoritative: self.cpu.clone(),
                emulated: emulated.clone(),
            }))
        }
    }

    /// Compares the emulated guest *memory* against the authoritative
    /// copy (register checks alone can miss diverging stores whose
    /// values are never reloaded). Costs a full page sweep, so DARCO
    /// runs it at end-of-run rather than every block.
    ///
    /// # Errors
    ///
    /// Returns the first differing guest address.
    pub fn check_memory(&self, emulated: &GuestMem) -> Result<(), u32> {
        match self.mem.first_difference(emulated) {
            None => Ok(()),
            Some(addr) => Err(addr),
        }
    }

    /// Authoritative architectural state. Flags are guaranteed current
    /// after a [`StateChecker::check`]; between advances on the fast
    /// path a lazy definition may still be pending.
    pub fn state(&self) -> &CpuState {
        &self.cpu
    }

    /// Guest instructions retired on the authoritative side.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Comparisons performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::asm::Asm;
    use darco_guest::{AluOp, Gpr, Inst};

    fn program() -> (GuestMem, CpuState) {
        let mut a = Asm::new(0x100);
        a.push(Inst::MovRI { dst: Gpr::Eax, imm: 1 });
        a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 2 });
        a.push(Inst::Halt);
        let p = a.assemble();
        let mut mem = GuestMem::new();
        mem.write_bytes(p.base, &p.bytes);
        (mem, CpuState::at(p.base))
    }

    #[test]
    fn matching_execution_passes() {
        let (mem, initial) = program();
        let mut chk = StateChecker::new(initial.clone(), mem.clone());

        // A correct "emulated" run: same emulator.
        let mut emu = initial;
        let mut emu_mem = mem;
        exec::step(&mut emu, &mut emu_mem).unwrap();
        chk.advance(1).unwrap();
        chk.check(&emu).unwrap();
        assert_eq!(chk.retired(), 1);
        assert_eq!(chk.checks(), 1);
    }

    #[test]
    fn divergence_is_reported_with_context() {
        let (mem, initial) = program();
        let mut chk = StateChecker::new(initial.clone(), mem);
        chk.advance(1).unwrap();
        let mut wrong = initial;
        wrong.set_gpr(Gpr::Eax, 999);
        wrong.eip = chk.state().eip;
        let err = chk.check(&wrong).unwrap_err();
        assert_eq!(err.at_guest_inst, 1);
        assert!(err.to_string().contains("divergence"));
    }

    #[test]
    fn advance_stops_at_halt() {
        let (mem, initial) = program();
        let mut chk = StateChecker::new(initial, mem);
        chk.advance(100).unwrap();
        assert!(chk.state().halted);
        assert_eq!(chk.retired(), 3);
    }

    #[test]
    fn fast_path_checker_matches_oracle() {
        let (mem, initial) = program();
        let mut oracle = StateChecker::new(initial.clone(), mem.clone());
        let mut fast = StateChecker::new(initial, mem);
        fast.set_fast_path(true);
        oracle.advance(100).unwrap();
        fast.advance(100).unwrap();
        // check() against the oracle's state forces fast's lazy flags
        // and must pass bit-exactly (the last AluRI defines flags).
        fast.check(oracle.state()).unwrap();
        assert_eq!(fast.retired(), oracle.retired());
        fast.check_memory(&mem_of(&oracle)).unwrap();
    }

    fn mem_of(c: &StateChecker) -> GuestMem {
        c.mem.clone()
    }
}
