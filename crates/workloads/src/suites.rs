//! The paper's benchmark roster: SPEC CPU2006 INT/FP, Physicsbench and
//! Mediabench (48 benchmarks, Sec. II-B), with generator parameters
//! calibrated to the characteristics the paper reports or implies:
//!
//! * 400.perlbench / 403.gcc / 483.xalancbmk: large static code, high
//!   indirect-branch density (the paper quotes 22.7M indirect branches
//!   per 4B instructions for perlbench vs. 1933 for 401.bzip2);
//! * 462.libquantum: tiny static code with extreme repetition (385K
//!   dynamic/static ratio) — minimal TOL overhead;
//! * 470.lbm: high ratio, streaming FP — TOL overhead amortized away;
//! * 000.cjpeg / 001.djpeg / 433.milc: similar ~15K-instruction static
//!   footprints but very different dynamic lengths (Sec. III-B);
//! * 007.jpg2000enc: execution spread over many blocks with repetition
//!   close to the promotion threshold (many superblocks, poor payback)
//!   vs. 006.jpg2000dec concentrated in few hot blocks;
//! * 107.novis_ragdoll: low ratio, large cold fraction (interpreter
//!   heavy);
//! * SPEC FP generally: high FP fraction, streaming access, high
//!   repetition — the lowest TOL overhead of the four suites (Fig. 6).
//!
//! Dynamic lengths are scaled down from the paper's 4B-instruction runs
//! (DESIGN.md §2); the experiment drivers scale the `BB/SBth` threshold
//! correspondingly so ratio-versus-threshold relationships match.

use crate::profile::{BenchProfile, Suite};

#[allow(clippy::too_many_arguments)]
fn p(
    name: &str,
    suite: Suite,
    static_insts: u32,
    dyn_base: u64,
    fp: f64,
    indirect: f64,
    hot: f64,
    warm: f64,
    foot_log2: u32,
    stream: f64,
    entropy: f64,
    seed: u64,
) -> BenchProfile {
    BenchProfile {
        name: name.to_owned(),
        suite,
        static_insts,
        dyn_base,
        fp_fraction: fp,
        indirect_freq: indirect,
        hot_fraction: hot,
        warm_fraction: warm,
        mem_footprint: 1 << foot_log2,
        stream_fraction: stream,
        branch_entropy: entropy,
        seed,
    }
}

/// All 48 benchmarks in the paper's figure order.
pub fn all_profiles() -> Vec<BenchProfile> {
    use Suite::*;
    vec![
        // ---- SPEC CPU2006 INT ------------------------------------------
        p(
            "400.perlbench",
            SpecInt,
            32_000,
            3_000_000,
            0.02,
            0.0057,
            0.12,
            0.48,
            22,
            0.35,
            0.45,
            4001,
        ),
        p("401.bzip2", SpecInt, 9_000, 3_500_000, 0.01, 0.0004, 0.15, 0.45, 23, 0.60, 0.50, 4012),
        p("403.gcc", SpecInt, 48_000, 2_500_000, 0.01, 0.0040, 0.10, 0.50, 22, 0.40, 0.50, 4030),
        p("429.mcf", SpecInt, 3_000, 3_500_000, 0.02, 0.0008, 0.20, 0.40, 24, 0.20, 0.50, 4290),
        p("445.gobmk", SpecInt, 24_000, 2_500_000, 0.02, 0.0020, 0.12, 0.50, 21, 0.40, 0.62, 4450),
        p("458.sjeng", SpecInt, 15_000, 3_000_000, 0.01, 0.0025, 0.14, 0.50, 21, 0.40, 0.60, 4580),
        p(
            "462.libquantum",
            SpecInt,
            800,
            6_000_000,
            0.08,
            0.0003,
            0.30,
            0.35,
            22,
            0.85,
            0.20,
            4620,
        ),
        p(
            "464.h264ref",
            SpecInt,
            20_000,
            3_500_000,
            0.08,
            0.0012,
            0.15,
            0.50,
            22,
            0.60,
            0.35,
            4640,
        ),
        p(
            "471.omnetpp",
            SpecInt,
            18_000,
            2_500_000,
            0.02,
            0.0050,
            0.12,
            0.50,
            22,
            0.30,
            0.50,
            4710,
        ),
        p("473.astar", SpecInt, 5_000, 3_000_000, 0.03, 0.0010, 0.20, 0.40, 23, 0.35, 0.55, 4730),
        p(
            "483.xalancbmk",
            SpecInt,
            30_000,
            2_500_000,
            0.01,
            0.0055,
            0.10,
            0.52,
            22,
            0.30,
            0.45,
            4830,
        ),
        p("998.specrand", SpecInt, 400, 2_000_000, 0.05, 0.0003, 0.35, 0.30, 16, 0.50, 0.50, 9980),
        // ---- SPEC CPU2006 FP -------------------------------------------
        p("410.bwaves", SpecFp, 4_000, 4_500_000, 0.42, 0.0002, 0.25, 0.35, 23, 0.90, 0.15, 4100),
        p("433.milc", SpecFp, 15_000, 4_000_000, 0.38, 0.0003, 0.18, 0.42, 23, 0.85, 0.20, 4330),
        p("434.zeusmp", SpecFp, 12_000, 4_000_000, 0.40, 0.0002, 0.20, 0.40, 23, 0.85, 0.15, 4340),
        p("435.gromacs", SpecFp, 14_000, 3_500_000, 0.35, 0.0005, 0.18, 0.42, 22, 0.75, 0.25, 4350),
        p(
            "436.cactusADM",
            SpecFp,
            10_000,
            4_500_000,
            0.45,
            0.0002,
            0.22,
            0.38,
            23,
            0.90,
            0.10,
            4360,
        ),
        p("437.leslie3d", SpecFp, 9_000, 4_200_000, 0.42, 0.0002, 0.22, 0.38, 23, 0.90, 0.15, 4370),
        p("444.namd", SpecFp, 8_000, 4_000_000, 0.40, 0.0004, 0.20, 0.40, 22, 0.80, 0.20, 4440),
        p("447.dealII", SpecFp, 20_000, 3_000_000, 0.30, 0.0015, 0.15, 0.45, 22, 0.60, 0.30, 4470),
        p("450.soplex", SpecFp, 16_000, 3_000_000, 0.28, 0.0012, 0.15, 0.45, 23, 0.50, 0.35, 4500),
        p(
            "459.GemsFDTD",
            SpecFp,
            11_000,
            4_000_000,
            0.40,
            0.0030,
            0.20,
            0.40,
            23,
            0.85,
            0.20,
            4590,
        ),
        p("453.povray", SpecFp, 18_000, 3_000_000, 0.30, 0.0020, 0.14, 0.46, 21, 0.50, 0.40, 4530),
        p(
            "454.calculix",
            SpecFp,
            15_000,
            3_500_000,
            0.35,
            0.0008,
            0.18,
            0.42,
            22,
            0.70,
            0.25,
            4540,
        ),
        p("470.lbm", SpecFp, 1_500, 6_000_000, 0.45, 0.0001, 0.35, 0.30, 24, 0.95, 0.10, 4700),
        p("481.wrf", SpecFp, 22_000, 3_500_000, 0.38, 0.0006, 0.16, 0.44, 23, 0.80, 0.20, 4810),
        p("482.sphinx3", SpecFp, 10_000, 3_500_000, 0.32, 0.0008, 0.20, 0.40, 22, 0.70, 0.30, 4820),
        p("999.specrand", SpecFp, 400, 2_000_000, 0.05, 0.0003, 0.35, 0.30, 16, 0.50, 0.50, 9990),
        // ---- Physicsbench ----------------------------------------------
        p(
            "100.novis_breakable",
            Physics,
            12_000,
            2_000_000,
            0.30,
            0.0015,
            0.13,
            0.45,
            22,
            0.55,
            0.40,
            1000,
        ),
        p(
            "101.novis_continuous",
            Physics,
            11_000,
            2_200_000,
            0.32,
            0.0012,
            0.14,
            0.44,
            22,
            0.60,
            0.35,
            1010,
        ),
        p(
            "102.novis_deformable",
            Physics,
            13_000,
            2_000_000,
            0.34,
            0.0014,
            0.13,
            0.45,
            22,
            0.55,
            0.38,
            1020,
        ),
        p(
            "103.novis_everything",
            Physics,
            15_000,
            2_200_000,
            0.30,
            0.0018,
            0.12,
            0.46,
            22,
            0.50,
            0.42,
            1030,
        ),
        p(
            "104.novis_explosions",
            Physics,
            12_000,
            2_100_000,
            0.33,
            0.0013,
            0.14,
            0.44,
            22,
            0.55,
            0.40,
            1040,
        ),
        p(
            "105.novis_highspeed",
            Physics,
            10_000,
            2_300_000,
            0.35,
            0.0010,
            0.16,
            0.42,
            22,
            0.60,
            0.35,
            1050,
        ),
        p(
            "106.novis_periodic",
            Physics,
            11_000,
            2_200_000,
            0.32,
            0.0012,
            0.15,
            0.43,
            22,
            0.60,
            0.36,
            1060,
        ),
        p(
            "107.novis_ragdoll",
            Physics,
            16_000,
            900_000,
            0.28,
            0.0020,
            0.08,
            0.40,
            22,
            0.50,
            0.45,
            1070,
        ),
        // ---- Mediabench ------------------------------------------------
        p("000.cjpeg", Media, 15_000, 800_000, 0.10, 0.0010, 0.12, 0.42, 21, 0.70, 0.35, 2000),
        p("001.djpeg", Media, 15_000, 1_000_000, 0.10, 0.0010, 0.13, 0.42, 21, 0.70, 0.35, 2010),
        p("002.h263dec", Media, 9_000, 1_400_000, 0.15, 0.0012, 0.25, 0.40, 21, 0.65, 0.35, 2020),
        p("003.h263enc", Media, 11_000, 2_000_000, 0.15, 0.0010, 0.18, 0.44, 21, 0.65, 0.35, 2030),
        p("004.h264dec", Media, 14_000, 2_200_000, 0.18, 0.0012, 0.16, 0.45, 22, 0.60, 0.38, 2040),
        p("005.h264enc", Media, 18_000, 2_400_000, 0.18, 0.0012, 0.15, 0.46, 22, 0.60, 0.38, 2050),
        p(
            "006.jpg2000dec",
            Media,
            10_000,
            1_400_000,
            0.16,
            0.0010,
            0.06,
            0.48,
            21,
            0.70,
            0.30,
            2060,
        ),
        p("007.jpg2000enc", Media, 12_000, 900_000, 0.16, 0.0012, 0.30, 0.42, 21, 0.65, 0.32, 2070),
        p("008.mpeg2dec", Media, 9_000, 1_800_000, 0.15, 0.0010, 0.16, 0.44, 21, 0.70, 0.32, 2080),
        p("009.mpeg2enc", Media, 12_000, 2_200_000, 0.15, 0.0010, 0.15, 0.45, 21, 0.70, 0.33, 2090),
        p("010.mpeg4dec", Media, 12_000, 2_000_000, 0.17, 0.0011, 0.15, 0.45, 22, 0.65, 0.35, 2100),
        p("011.mpeg4enc", Media, 16_000, 2_400_000, 0.17, 0.0011, 0.14, 0.46, 22, 0.65, 0.35, 2110),
    ]
}

/// Profiles of one suite, in figure order.
pub fn suite_profiles(suite: Suite) -> Vec<BenchProfile> {
    all_profiles().into_iter().filter(|p| p.suite == suite).collect()
}

/// Looks up a profile by its figure name (e.g. `"400.perlbench"`).
pub fn by_name(name: &str) -> Option<BenchProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

/// The paper's four Sec. III-D outliers, in Fig. 9/10/11 order.
pub fn outliers() -> Vec<BenchProfile> {
    ["470.lbm", "007.jpg2000enc", "107.novis_ragdoll", "400.perlbench"]
        .iter()
        .map(|n| by_name(n).expect("outlier present"))
        .collect()
}

/// A small, fast profile for tests, examples and smoke runs.
pub fn quicktest_profile() -> BenchProfile {
    p("quicktest", Suite::SpecInt, 1_200, 250_000, 0.10, 0.0015, 0.20, 0.40, 18, 0.60, 0.40, 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_48_benchmarks() {
        let all = all_profiles();
        assert_eq!(all.len(), 48);
        assert_eq!(suite_profiles(Suite::SpecInt).len(), 12);
        assert_eq!(suite_profiles(Suite::SpecFp).len(), 16);
        assert_eq!(suite_profiles(Suite::Physics).len(), 8);
        assert_eq!(suite_profiles(Suite::Media).len(), 12);
    }

    #[test]
    fn all_profiles_validate() {
        for p in all_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
        quicktest_profile().validate().unwrap();
    }

    #[test]
    fn names_unique_and_seeds_unique() {
        let all = all_profiles();
        let mut names: Vec<_> = all.iter().map(|p| p.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 48);
        let mut seeds: Vec<_> = all.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 48);
    }

    #[test]
    fn paper_anchors_hold() {
        let perl = by_name("400.perlbench").unwrap();
        let bzip = by_name("401.bzip2").unwrap();
        assert!(perl.indirect_freq > 10.0 * bzip.indirect_freq, "perlbench ≫ bzip2 indirects");

        let libq = by_name("462.libquantum").unwrap();
        assert!(libq.dyn_static_ratio(1.0) > 5_000.0, "libquantum extreme repetition");

        // cjpeg, djpeg and milc share a footprint but not dynamic length
        // (Sec. III-B).
        let cj = by_name("000.cjpeg").unwrap();
        let mi = by_name("433.milc").unwrap();
        assert_eq!(cj.static_insts, mi.static_insts);
        assert!(mi.dyn_base > 3 * cj.dyn_base);

        // FP suite is more FP-heavy than INT on average.
        let avg = |s: Suite| {
            let v = suite_profiles(s);
            v.iter().map(|p| p.fp_fraction).sum::<f64>() / v.len() as f64
        };
        assert!(avg(Suite::SpecFp) > 3.0 * avg(Suite::SpecInt));
    }

    #[test]
    fn outliers_are_the_papers() {
        let o = outliers();
        assert_eq!(o[0].name, "470.lbm");
        assert_eq!(o[3].name, "400.perlbench");
    }
}
