//! Benchmark profile parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Benchmark suite, as grouped in every figure of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2006 integer.
    SpecInt,
    /// SPEC CPU2006 floating point.
    SpecFp,
    /// Physicsbench.
    Physics,
    /// Mediabench.
    Media,
}

impl Suite {
    /// All suites in the paper's presentation order.
    pub const ALL: [Suite; 4] = [Suite::SpecInt, Suite::SpecFp, Suite::Physics, Suite::Media];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Suite::SpecInt => "SPEC CPU2006 INT",
            Suite::SpecFp => "SPEC CPU2006 FP",
            Suite::Physics => "Physicsbench",
            Suite::Media => "Mediabench",
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Generator parameters for one benchmark (see the crate docs for the
/// property each field reproduces).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchProfile {
    /// Benchmark name as it appears in the paper's figures.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// Approximate static guest instructions the program executes.
    pub static_insts: u32,
    /// Dynamic guest instructions at scale 1.0.
    pub dyn_base: u64,
    /// Fraction of hot-loop operations that are floating point.
    pub fp_fraction: f64,
    /// Guest indirect branches (incl. returns) per dynamic instruction.
    pub indirect_freq: f64,
    /// Fraction of static code that becomes hot (superblock candidates).
    pub hot_fraction: f64,
    /// Fraction of static code executed a medium number of times (BBM).
    pub warm_fraction: f64,
    /// Data footprint in bytes (power of two).
    pub mem_footprint: u32,
    /// Fraction of memory accesses that stream sequentially (the rest
    /// are pseudo-random over the footprint).
    pub stream_fraction: f64,
    /// Probability that a conditional branch site is data-dependent
    /// (hard to predict) rather than strongly biased.
    pub branch_entropy: f64,
    /// Generator seed (deterministic programs).
    pub seed: u64,
}

impl BenchProfile {
    /// Dynamic instruction target at a given scale.
    pub fn dyn_target(&self, scale: f64) -> u64 {
        (self.dyn_base as f64 * scale).max(1.0) as u64
    }

    /// The paper's dynamic/static instruction ratio for this profile.
    pub fn dyn_static_ratio(&self, scale: f64) -> f64 {
        self.dyn_target(scale) as f64 / self.static_insts as f64
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        let frac = |v: f64, n: &str| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{n} out of [0,1]: {v}"))
            }
        };
        frac(self.fp_fraction, "fp_fraction")?;
        frac(self.hot_fraction, "hot_fraction")?;
        frac(self.warm_fraction, "warm_fraction")?;
        frac(self.stream_fraction, "stream_fraction")?;
        frac(self.branch_entropy, "branch_entropy")?;
        if self.hot_fraction + self.warm_fraction > 1.0 {
            return Err("hot + warm fractions exceed 1".into());
        }
        if !self.mem_footprint.is_power_of_two() {
            return Err(format!("mem_footprint not a power of two: {}", self.mem_footprint));
        }
        if self.static_insts < 50 {
            return Err("static_insts too small".into());
        }
        if self.indirect_freq >= 0.2 {
            return Err(format!("indirect_freq implausible: {}", self.indirect_freq));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BenchProfile {
        BenchProfile {
            name: "test".into(),
            suite: Suite::SpecInt,
            static_insts: 1000,
            dyn_base: 1_000_000,
            fp_fraction: 0.1,
            indirect_freq: 0.001,
            hot_fraction: 0.2,
            warm_fraction: 0.4,
            mem_footprint: 1 << 20,
            stream_fraction: 0.5,
            branch_entropy: 0.3,
            seed: 42,
        }
    }

    #[test]
    fn ratio_math() {
        let p = base();
        assert_eq!(p.dyn_target(1.0), 1_000_000);
        assert_eq!(p.dyn_target(0.5), 500_000);
        assert!((p.dyn_static_ratio(1.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(base().validate().is_ok());
        let mut p = base();
        p.fp_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = base();
        p.hot_fraction = 0.7;
        p.warm_fraction = 0.7;
        assert!(p.validate().is_err());
        let mut p = base();
        p.mem_footprint = 1000;
        assert!(p.validate().is_err());
    }

    #[test]
    fn suite_labels() {
        assert_eq!(Suite::SpecInt.label(), "SPEC CPU2006 INT");
        assert_eq!(Suite::ALL.len(), 4);
    }
}
