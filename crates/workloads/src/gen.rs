//! The synthetic guest program generator.
//!
//! Produces a complete, halting g86 program from a
//! [`BenchProfile`]. The program has the structure
//! the paper's analysis cares about:
//!
//! * **cold** functions executed once from the entry prologue (stay in
//!   IM under the `IM/BBth = 5` threshold),
//! * **warm** functions executed a few dozen times from a warm-up loop
//!   (translated in BBM, never promoted),
//! * **hot** kernels — counted loops over the data arrays — called from
//!   the main loop often enough to cross the superblock threshold,
//! * **indirect control flow**: jump-table dispatches (inside hot loops
//!   and at the top level) and function-pointer calls, at the profile's
//!   density, plus the returns of every call,
//! * memory accesses split between sequential streams and pseudo-random
//!   probes (an in-program LCG) over the footprint, and FP work at the
//!   profile's fraction.
//!
//! Generation is deterministic per seed. Jump and function-pointer
//! tables are materialized directly in guest memory by the loader, like
//! a linker would.

use crate::profile::BenchProfile;
use darco_guest::asm::{Asm, Label, Program};
use darco_guest::{
    AluOp, Cond, CpuState, FpOp, FpReg, Gpr, GuestMem, Inst, MemRef, MemWidth, Scale, ShiftOp,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Guest address the code is loaded at.
pub const CODE_BASE: u32 = 0x1000;
/// Base of the data arrays.
pub const DATA_BASE: u32 = 0x0100_0000;
/// Base of the jump tables (filled by the loader).
pub const TABLE_BASE: u32 = 0x0080_0000;
/// Base of the function-pointer table.
pub const FUNC_TABLE: u32 = 0x0090_0000;
/// Initial stack pointer.
pub const STACK_TOP: u32 = 0x00F0_0000;

/// A ready-to-run generated workload.
#[derive(Debug)]
pub struct Workload {
    /// Benchmark name.
    pub name: String,
    /// Guest memory with code, tables and initialized data.
    pub mem: GuestMem,
    /// Entry point.
    pub entry: u32,
    /// Initial architectural state (stack pointer set).
    pub initial: CpuState,
    /// Static instructions emitted.
    pub static_insts: u32,
    /// Rough dynamic instruction estimate at the requested scale.
    pub dyn_estimate: u64,
}

struct Gen<'a> {
    a: Asm,
    rng: SmallRng,
    p: &'a BenchProfile,
    foot_mask: i32,
    /// Probability that a streaming access is sub-word (byte/halfword):
    /// media codecs move pixels and samples, not just words.
    subword_prob: f64,
    /// Mask for pseudo-random accesses: a hot window of the footprint
    /// (real pointer-chasing has locality; uniform access over many
    /// megabytes would make every load a TLB walk plus memory miss and
    /// drown every other effect).
    rand_mask: i32,
    /// Jump tables to materialize: (table address, entry labels).
    tables: Vec<(u32, Vec<Label>)>,
    next_table: u32,
}

const LCG_A: i32 = 1_103_515_245;
const LCG_C: i32 = 12_345;

impl<'a> Gen<'a> {
    fn new(p: &'a BenchProfile) -> Gen<'a> {
        Gen {
            a: Asm::new(CODE_BASE),
            rng: SmallRng::seed_from_u64(p.seed),
            p,
            subword_prob: if p.suite == crate::profile::Suite::Media { 0.35 } else { 0.08 },
            foot_mask: (p.mem_footprint - 1) as i32 & !3,
            rand_mask: ((p.mem_footprint / 8).clamp(1 << 12, 1 << 20) - 1) as i32 & !3,
            tables: Vec::new(),
            next_table: TABLE_BASE,
        }
    }

    /// Advances the in-program LCG held in `eax`.
    fn emit_lcg(&mut self) {
        self.a.push(Inst::MovRI { dst: Gpr::Edx, imm: LCG_A });
        self.a.push(Inst::Imul { dst: Gpr::Eax, src: Gpr::Edx });
        self.a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: LCG_C });
    }

    /// One streaming access: load (or read-modify) at `[DATA + esi]`,
    /// advance, wrap.
    fn emit_stream_access(&mut self, store: bool) {
        let m =
            MemRef { base: Some(Gpr::Esi), index: None, scale: Scale::S1, disp: DATA_BASE as i32 };
        if store {
            self.a.push(Inst::Store { addr: m, src: Gpr::Ebx });
        } else {
            self.a.push(Inst::AluRM { op: AluOp::Add, dst: Gpr::Ebx, addr: m });
        }
        self.a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Esi, imm: 4 });
        self.a.push(Inst::AluRI { op: AluOp::And, dst: Gpr::Esi, imm: self.foot_mask });
    }

    /// A sub-word access over the stream pointer (media-style pixel and
    /// sample traffic).
    fn emit_subword_access(&mut self) {
        let m =
            MemRef { base: Some(Gpr::Esi), index: None, scale: Scale::S1, disp: DATA_BASE as i32 };
        let width = if self.rng.gen_bool(0.6) { MemWidth::B1 } else { MemWidth::B2 };
        if self.rng.gen_bool(0.5) {
            self.a.push(Inst::LoadZx { dst: Gpr::Edx, addr: m, width });
            self.a.push(Inst::AluRR { op: AluOp::Add, dst: Gpr::Ebx, src: Gpr::Edx });
        } else {
            self.a.push(Inst::LoadSx { dst: Gpr::Edx, addr: m, width });
            self.a.push(Inst::StoreN {
                addr: MemRef {
                    base: Some(Gpr::Esi),
                    index: None,
                    scale: Scale::S1,
                    disp: DATA_BASE as i32 + 4,
                },
                src: Gpr::Edx,
                width,
            });
        }
        self.a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Esi, imm: 4 });
        self.a.push(Inst::AluRI { op: AluOp::And, dst: Gpr::Esi, imm: self.foot_mask });
    }

    /// One pseudo-random access derived from the LCG, within the hot
    /// window.
    fn emit_random_access(&mut self, store: bool) {
        self.a.push(Inst::MovRR { dst: Gpr::Edi, src: Gpr::Eax });
        self.a.push(Inst::Shift { op: ShiftOp::Shr, dst: Gpr::Edi, amount: 7 });
        self.a.push(Inst::AluRI { op: AluOp::And, dst: Gpr::Edi, imm: self.rand_mask });
        let m =
            MemRef { base: Some(Gpr::Edi), index: None, scale: Scale::S1, disp: DATA_BASE as i32 };
        if store {
            self.a.push(Inst::Store { addr: m, src: Gpr::Ebx });
        } else {
            self.a.push(Inst::AluRM { op: AluOp::Xor, dst: Gpr::Ebx, addr: m });
        }
    }

    /// A short FP sequence over the stream location.
    fn emit_fp_work(&mut self) {
        let m =
            MemRef { base: Some(Gpr::Esi), index: None, scale: Scale::S1, disp: DATA_BASE as i32 };
        self.a.push(Inst::FLoad { dst: FpReg(0), addr: m });
        self.a.push(Inst::FArith { op: FpOp::Mul, dst: FpReg(0), src: FpReg(1) });
        self.a.push(Inst::FArith { op: FpOp::Add, dst: FpReg(2), src: FpReg(0) });
        if self.rng.gen_bool(0.3) {
            self.a.push(Inst::FArith { op: FpOp::Sub, dst: FpReg(3), src: FpReg(2) });
        }
        if self.rng.gen_bool(0.2) {
            self.a.push(Inst::FStore { addr: m, src: FpReg(2) });
        }
    }

    /// A conditional branch site: data-dependent (entropy) or biased.
    fn emit_branch_site(&mut self) {
        let skip = self.a.fresh_label();
        if self.rng.gen_bool(self.p.branch_entropy) {
            // Data-dependent: test an LCG bit.
            let bit = 1 << self.rng.gen_range(3..9);
            self.a.push(Inst::MovRR { dst: Gpr::Edx, src: Gpr::Eax });
            self.a.push(Inst::AluRI { op: AluOp::And, dst: Gpr::Edx, imm: bit });
            self.a.push_jcc(Cond::E, skip);
        } else {
            // Strongly biased: almost never taken.
            self.a.push(Inst::MovRR { dst: Gpr::Edx, src: Gpr::Eax });
            self.a.push(Inst::AluRI { op: AluOp::And, dst: Gpr::Edx, imm: 0xFF });
            self.a.push(Inst::CmpRI { a: Gpr::Edx, imm: 0 });
            self.a.push_jcc(Cond::E, skip);
        }
        // A couple of conditionally-skipped instructions.
        self.a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Ebx, imm: 7 });
        self.a.push(Inst::Not { dst: Gpr::Ebx });
        self.a.bind(skip);
    }

    /// An in-line jump-table dispatch with `n` targets rejoining at the
    /// end. `n` must be a power of two.
    fn emit_dispatch(&mut self, n: u32) {
        debug_assert!(n.is_power_of_two());
        let table = self.next_table;
        self.next_table += n * 4;
        let join = self.a.fresh_label();
        self.a.push(Inst::MovRR { dst: Gpr::Edx, src: Gpr::Eax });
        self.a.push(Inst::Shift { op: ShiftOp::Shr, dst: Gpr::Edx, amount: 5 });
        self.a.push(Inst::AluRI { op: AluOp::And, dst: Gpr::Edx, imm: (n - 1) as i32 });
        self.a.push(Inst::JmpMem {
            addr: MemRef {
                base: None,
                index: Some(Gpr::Edx),
                scale: Scale::S4,
                disp: table as i32,
            },
        });
        let mut labels = Vec::new();
        for i in 0..n {
            let l = self.a.fresh_label();
            self.a.bind(l);
            labels.push(l);
            self.a.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Ebx, imm: i as i32 + 1 });
            if i + 1 == n {
                // Fall through to join.
            } else {
                self.a.push_jmp(join);
            }
        }
        self.a.bind(join);
        self.tables.push((table, labels));
    }

    /// The body of a hot kernel loop: `len`-ish instructions of mixed
    /// work, with the profile's memory/FP/branch mix, plus
    /// `dispatch_sites` jump-table dispatches (indirect branches executed
    /// once per loop iteration).
    fn emit_kernel_body(&mut self, target_len: usize, dispatch_sites: u32) {
        let start = self.a.here();
        let _ = start;
        let mut emitted = 0usize;
        while emitted < target_len {
            let before = self.static_count();
            let roll: f64 = self.rng.gen();
            if roll < self.p.fp_fraction {
                self.emit_fp_work();
            } else if roll < self.p.fp_fraction + 0.35 {
                let stream = self.rng.gen_bool(self.p.stream_fraction);
                let store = self.rng.gen_bool(0.3);
                if stream && self.rng.gen_bool(self.subword_prob) {
                    self.emit_subword_access();
                } else if stream {
                    self.emit_stream_access(store);
                } else {
                    self.emit_random_access(store);
                }
            } else if roll < self.p.fp_fraction + 0.45 {
                self.emit_branch_site();
            } else if roll < self.p.fp_fraction + 0.50 {
                self.emit_lcg();
            } else {
                // Plain integer work with varied flag behavior.
                match self.rng.gen_range(0..6) {
                    0 => self.a.push(Inst::AluRI {
                        op: AluOp::Add,
                        dst: Gpr::Ebx,
                        imm: self.rng.gen_range(-100..100),
                    }),
                    1 => self.a.push(Inst::MovRR { dst: Gpr::Edx, src: Gpr::Ebx }),
                    2 => self.a.push(Inst::Shift { op: ShiftOp::Sar, dst: Gpr::Ebx, amount: 1 }),
                    3 => self.a.push(Inst::AluRR { op: AluOp::Xor, dst: Gpr::Ebx, src: Gpr::Eax }),
                    4 => self.a.push(Inst::Lea {
                        dst: Gpr::Edx,
                        addr: MemRef::base_index(Gpr::Ebx, Gpr::Esi, Scale::S2, 12),
                    }),
                    _ => self.a.push(Inst::Imul { dst: Gpr::Ebx, src: Gpr::Edx }),
                }
            }
            emitted += self.static_count() - before;
        }
        for _ in 0..dispatch_sites {
            self.emit_dispatch(4);
        }
    }

    fn static_count(&self) -> usize {
        self.a.inst_count()
    }

    fn asm_len(&self) -> usize {
        self.a.inst_count()
    }

    /// A hot kernel: `inner`-iteration counted loop around a mixed body.
    /// Returns its entry label.
    fn emit_hot_kernel(&mut self, inner: u32, body_len: usize, dispatch_sites: u32) -> Label {
        let f = self.a.fresh_label();
        self.a.bind(f);
        let top = self.a.fresh_label();
        self.a.push(Inst::MovRI { dst: Gpr::Ecx, imm: inner as i32 });
        self.a.bind(top);
        self.emit_kernel_body(body_len, dispatch_sites);
        self.a.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Ecx, imm: 1 });
        self.a.push_jcc(Cond::Ne, top);
        self.a.push(Inst::Ret);
        f
    }

    /// A warm or cold function: straight-line work, no loop.
    fn emit_plain_func(&mut self, len: usize, with_stores: bool) -> Label {
        let f = self.a.fresh_label();
        self.a.bind(f);
        let target = self.asm_len() + len;
        while self.asm_len() < target {
            match self.rng.gen_range(0..8) {
                0 => {
                    self.a.push(Inst::MovRI { dst: Gpr::Edx, imm: self.rng.gen_range(0..1 << 20) })
                }
                1 => self.a.push(Inst::AluRR { op: AluOp::Add, dst: Gpr::Ebx, src: Gpr::Edx }),
                2 => self.a.push(Inst::AluRI { op: AluOp::Or, dst: Gpr::Edx, imm: 3 }),
                3 if with_stores => {
                    let off = (self.rng.gen_range(0..self.p.mem_footprint / 4) * 4) as i32;
                    self.a.push(Inst::StoreI {
                        addr: MemRef::abs((DATA_BASE as i32 + off) as u32),
                        imm: self.rng.gen_range(1..1000),
                    });
                }
                3 => self.a.push(Inst::Neg { dst: Gpr::Edx }),
                4 => self.emit_lcg(),
                5 => self.a.push(Inst::MovRR { dst: Gpr::Edx, src: Gpr::Ebx }),
                6 => self.emit_branch_site(),
                _ => self.a.push(Inst::TestRR { a: Gpr::Ebx, b: Gpr::Ebx }),
            }
        }
        self.a.push(Inst::Ret);
        f
    }
}

/// Generates the workload for `profile` at a dynamic-length scale
/// (1.0 = the profile's `dyn_base`).
///
/// # Panics
///
/// Panics if the profile fails [`BenchProfile::validate`].
pub fn generate(profile: &BenchProfile, scale: f64) -> Workload {
    profile.validate().unwrap_or_else(|e| panic!("invalid profile {}: {e}", profile.name));
    let dyn_target = profile.dyn_target(scale);
    let mut g = Gen::new(profile);

    let s = profile.static_insts as usize;
    let hot_budget = (s as f64 * profile.hot_fraction) as usize;
    let warm_budget = (s as f64 * profile.warm_fraction) as usize;
    let cold_budget = s.saturating_sub(hot_budget + warm_budget);

    // --- Entry jumps over the function bodies to the driver. ---
    let driver = g.a.fresh_label();
    g.a.push_jmp(driver);

    // --- Hot kernels. ---
    let kernel_static = 45usize;
    let n_kernels = (hot_budget / kernel_static).max(1);
    // Loop depth controls the *return* density floor (one return per
    // kernel invocation): low-indirect benchmarks get deep loops, while
    // indirect-heavy ones get shallow loops plus in-body dispatches.
    let inner: u32 =
        ((3.0 / (profile.indirect_freq.max(1e-5) * kernel_static as f64)) as u32).clamp(16, 256);
    // Expected in-body dispatch sites per kernel: each site fires once
    // per loop iteration, so the per-instruction indirect density a body
    // contributes is sites / body_len; returns supply the rest.
    let sites_expect = 0.7 * profile.indirect_freq * kernel_static as f64;
    let mut kernels = Vec::new();
    for _ in 0..n_kernels {
        let body = g.rng.gen_range(kernel_static - 15..kernel_static + 10);
        let mut sites = sites_expect.floor() as u32;
        if g.rng.gen_bool(sites_expect.fract().clamp(0.0, 1.0)) {
            sites += 1;
        }
        kernels.push(g.emit_hot_kernel(inner, body, sites.min(3)));
    }

    // --- Virtual functions (function-pointer targets), hot. ---
    let n_virtual = 4u32;
    let mut vfuncs = Vec::new();
    for _ in 0..n_virtual {
        vfuncs.push(g.emit_plain_func(8, false));
    }

    // --- Warm functions. ---
    let warm_func_len = 26usize;
    let n_warm = (warm_budget / (warm_func_len + 1)).max(1);
    let warm_funcs: Vec<Label> =
        (0..n_warm).map(|_| g.emit_plain_func(warm_func_len, false)).collect();

    // --- Cold functions (also initialize data). ---
    let cold_func_len = 38usize;
    let n_cold = (cold_budget / (cold_func_len + 1)).max(1);
    let cold_funcs: Vec<Label> =
        (0..n_cold).map(|_| g.emit_plain_func(cold_func_len, true)).collect();

    // --- Driver. ---
    g.a.bind(driver);
    g.a.push(Inst::MovRI { dst: Gpr::Eax, imm: profile.seed as i32 | 1 });
    g.a.push(Inst::MovRI { dst: Gpr::Ebx, imm: 0 });
    g.a.push(Inst::MovRI { dst: Gpr::Esi, imm: 0 });
    g.a.push(Inst::MovRI { dst: Gpr::Edi, imm: 0 });
    // FP seed registers.
    g.a.push(Inst::MovRI { dst: Gpr::Edx, imm: 3 });
    g.a.push(Inst::CvtIF { dst: FpReg(1), src: Gpr::Edx });
    g.a.push(Inst::CvtIF { dst: FpReg(2), src: Gpr::Edx });
    g.a.push(Inst::CvtIF { dst: FpReg(3), src: Gpr::Edx });
    // Cold prologue: every cold function exactly once.
    for f in &cold_funcs {
        g.a.push_call(*f);
    }
    // Warm-up loop.
    // Warm executions sit between the promotion thresholds (above
    // IM/BBth = 5, well below the scaled BB/SBth), scaled down like the
    // dynamic length so BBM's dynamic share stays small (paper Fig. 5b).
    let warm_iters = g.rng.gen_range(7..14);
    let wl = g.a.fresh_label();
    g.a.push(Inst::MovRI { dst: Gpr::Ebp, imm: warm_iters });
    g.a.bind(wl);
    for f in &warm_funcs {
        g.a.push_call(*f);
    }
    g.a.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Ebp, imm: 1 });
    g.a.push_jcc(Cond::Ne, wl);

    // Main hot loop: estimate per-iteration cost, solve for the count.
    let per_iter_est: u64 = n_kernels as u64 * (inner as u64 * (kernel_static as u64 + 4) + 4)
        + n_virtual as u64 * 16
        + 24;
    let warm_est = warm_iters as u64 * n_warm as u64 * (warm_func_len as u64 + 3);
    let cold_est = n_cold as u64 * (cold_func_len as u64 + 3);
    let outer = (dyn_target.saturating_sub(warm_est + cold_est) / per_iter_est).max(4);

    let hl = g.a.fresh_label();
    g.a.push(Inst::MovRI { dst: Gpr::Ebp, imm: outer.min(i32::MAX as u64) as i32 });
    g.a.bind(hl);
    for f in &kernels {
        g.a.push_call(*f);
    }
    // Function-pointer dispatch through the loader-filled table.
    g.a.push(Inst::MovRR { dst: Gpr::Edx, src: Gpr::Eax });
    g.a.push(Inst::Shift { op: ShiftOp::Shr, dst: Gpr::Edx, amount: 9 });
    g.a.push(Inst::AluRI { op: AluOp::And, dst: Gpr::Edx, imm: (n_virtual - 1) as i32 });
    g.a.push(Inst::Load {
        dst: Gpr::Edx,
        addr: MemRef {
            base: None,
            index: Some(Gpr::Edx),
            scale: Scale::S4,
            disp: FUNC_TABLE as i32,
        },
    });
    g.a.push(Inst::CallInd { reg: Gpr::Edx });
    // One top-level jump-table dispatch.
    g.emit_dispatch(8);
    g.a.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Ebp, imm: 1 });
    g.a.push_jcc(Cond::Ne, hl);
    g.a.push(Inst::Halt);

    let static_insts = g.asm_len() as u32;
    let tables = std::mem::take(&mut g.tables);
    let program: Program = g.a.assemble();

    // --- Load into guest memory. ---
    let mut mem = GuestMem::new();
    mem.write_bytes(program.base, &program.bytes);
    for (table, labels) in &tables {
        for (i, l) in labels.iter().enumerate() {
            mem.write_u32(table + 4 * i as u32, program.label_addr(*l));
        }
    }
    for (i, f) in vfuncs.iter().enumerate() {
        mem.write_u32(FUNC_TABLE + 4 * i as u32, program.label_addr(*f));
    }
    // Pre-fill a slice of the data region so loads see varied values.
    let mut seed = profile.seed | 1;
    for w in (0..profile.mem_footprint.min(1 << 16)).step_by(4) {
        seed = seed.wrapping_mul(0x9E37_79B9).wrapping_add(12345);
        mem.write_u32(DATA_BASE + w, seed as u32);
    }

    let mut initial = CpuState::at(program.base);
    initial.set_gpr(Gpr::Esp, STACK_TOP);

    Workload {
        name: profile.name.clone(),
        mem,
        entry: program.base,
        initial,
        static_insts,
        dyn_estimate: outer * per_iter_est + warm_est + cold_est,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;
    use darco_guest::exec;

    fn run_to_halt(w: &Workload, cap: u64) -> (CpuState, u64) {
        let mut mem = w.mem.clone();
        let mut cpu = w.initial.clone();
        let mut n = 0u64;
        while !cpu.halted && n < cap {
            exec::step(&mut cpu, &mut mem)
                .unwrap_or_else(|e| panic!("decode fault at {:#x} after {n} insts: {e}", cpu.eip));
            n += 1;
        }
        (cpu, n)
    }

    #[test]
    fn quicktest_program_runs_and_halts() {
        let p = suites::quicktest_profile();
        let w = generate(&p, 1.0);
        let (cpu, n) = run_to_halt(&w, 10_000_000);
        assert!(cpu.halted, "program must halt (ran {n})");
        // Dynamic length within a factor of 4 of the estimate.
        assert!(n as f64 > w.dyn_estimate as f64 / 4.0, "{n} vs est {}", w.dyn_estimate);
        assert!((n as f64) < w.dyn_estimate as f64 * 4.0, "{n} vs est {}", w.dyn_estimate);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = suites::quicktest_profile();
        let a = generate(&p, 1.0);
        let b = generate(&p, 1.0);
        assert_eq!(a.static_insts, b.static_insts);
        assert_eq!(a.entry, b.entry);
        let (ca, na) = run_to_halt(&a, 10_000_000);
        let (cb, nb) = run_to_halt(&b, 10_000_000);
        assert_eq!(na, nb);
        assert!(ca.arch_eq(&cb));
    }

    #[test]
    fn static_size_tracks_profile() {
        let p = suites::quicktest_profile();
        let w = generate(&p, 1.0);
        let ratio = w.static_insts as f64 / p.static_insts as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "static {} vs target {}",
            w.static_insts,
            p.static_insts
        );
    }

    #[test]
    fn scale_changes_dynamic_not_static() {
        let p = suites::quicktest_profile();
        let small = generate(&p, 0.5);
        let big = generate(&p, 2.0);
        assert_eq!(small.static_insts, big.static_insts);
        let (_, ns) = run_to_halt(&small, 20_000_000);
        let (_, nb) = run_to_halt(&big, 20_000_000);
        assert!(nb > ns * 2, "dynamic length must scale: {ns} vs {nb}");
    }

    #[test]
    fn indirect_profiles_generate_indirect_branches() {
        let mut p = suites::quicktest_profile();
        p.indirect_freq = 0.01;
        let w = generate(&p, 1.0);
        let mut mem = w.mem.clone();
        let mut cpu = w.initial.clone();
        let mut indirect = 0u64;
        let mut n = 0u64;
        while !cpu.halted && n < 5_000_000 {
            let info = exec::step(&mut cpu, &mut mem).unwrap();
            if info.inst.is_indirect() {
                indirect += 1;
            }
            n += 1;
        }
        assert!(cpu.halted);
        let freq = indirect as f64 / n as f64;
        assert!(freq > 0.003, "indirect frequency too low: {freq}");
    }

    #[test]
    fn fp_profiles_generate_fp_work() {
        let mut p = suites::quicktest_profile();
        p.fp_fraction = 0.4;
        p.seed = 99;
        let w = generate(&p, 1.0);
        let mut mem = w.mem.clone();
        let mut cpu = w.initial.clone();
        let mut fp = 0u64;
        let mut n = 0u64;
        while !cpu.halted && n < 5_000_000 {
            let info = exec::step(&mut cpu, &mut mem).unwrap();
            if matches!(
                info.inst.class(),
                darco_guest::GuestClass::Fp | darco_guest::GuestClass::FpComplex
            ) {
                fp += 1;
            }
            n += 1;
        }
        assert!(cpu.halted);
        assert!(fp as f64 / n as f64 > 0.05, "fp share too low: {}", fp as f64 / n as f64);
    }
}
