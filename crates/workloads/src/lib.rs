//! # darco-workloads — benchmark profiles and program generator
//!
//! The paper characterizes the software layer with SPEC CPU2006 (INT and
//! FP), Mediabench and Physicsbench (Sec. II-B). Those binaries are not
//! redistributable and their x86 builds would not run on the g86 guest
//! ISA anyway, so this crate provides the substitution described in
//! DESIGN.md §2: a deterministic, seeded **program generator**
//! ([`gen::generate`]) driven by per-benchmark [`profile::BenchProfile`]s
//! that encode exactly the aggregate properties the paper's analysis
//! attributes its observations to —
//!
//! * static code footprint and its hot/warm/cold split (Fig. 5),
//! * dynamic/static instruction ratio (Fig. 6's overlay),
//! * indirect-branch density (Fig. 7's overlay, the perlbench effect),
//! * floating-point fraction (SPEC FP's low TOL activity),
//! * memory footprint and streaming-vs-random access mix (D$ behavior),
//! * conditional-branch entropy (predictor behavior).
//!
//! [`suites::all_profiles`] lists the 48 benchmarks of the paper's
//! figures with parameters calibrated to the clues the paper gives
//! (e.g. 400.perlbench's 22.7M indirect branches per 4B instructions,
//! 462.libquantum's 385K dynamic/static ratio, the similar ~15K-
//! instruction footprints of cjpeg/djpeg/milc).
//!
//! ```
//! use darco_workloads::{generate, suites};
//!
//! let profile = suites::by_name("462.libquantum").expect("known benchmark");
//! let workload = generate(&profile, 0.01); // 1% of the default length
//! assert!(workload.static_insts > 500);
//! assert_eq!(workload.initial.eip, workload.entry);
//! assert_eq!(suites::all_profiles().len(), 48);
//! ```

pub mod gen;
pub mod profile;
pub mod suites;

pub use gen::{generate, Workload};
pub use profile::{BenchProfile, Suite};
