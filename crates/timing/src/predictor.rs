//! Branch prediction: Gshare direction predictor plus a branch target
//! buffer.
//!
//! The modeled front-end (paper Fig. 4) predicts conditional branch
//! directions with a Gshare predictor (12-bit global history register,
//! Table I) and branch targets with a BTB. The host has no return address
//! stack, so returns and indirect jumps are predicted by the BTB alone —
//! which is why indirect-branch-heavy guests hurt (Sec. III-B).

use darco_host::BranchKind;

/// Gshare + BTB predictor with statistics.
#[derive(Debug, Clone)]
pub struct Predictor {
    history: u32,
    history_mask: u32,
    pht: Vec<u8>,
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    btb_mask: u64,
    branches: u64,
    mispredicts: u64,
}

impl Predictor {
    /// Builds a predictor with `history_bits` of global history and a
    /// direct-mapped BTB of `btb_entries` entries (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `btb_entries` is not a power of two or `history_bits`
    /// exceeds 20.
    pub fn new(history_bits: u32, btb_entries: u32) -> Predictor {
        assert!(btb_entries.is_power_of_two(), "BTB entries must be a power of two");
        assert!(history_bits <= 20, "history register too large");
        Predictor {
            history: 0,
            history_mask: (1 << history_bits) - 1,
            pht: vec![1; 1 << history_bits], // weakly not-taken
            btb_tags: vec![u64::MAX; btb_entries as usize],
            btb_targets: vec![0; btb_entries as usize],
            btb_mask: (btb_entries - 1) as u64,
            branches: 0,
            mispredicts: 0,
        }
    }

    /// Processes one control transfer with its actual outcome; returns
    /// `true` if the prediction was wrong (redirect needed).
    ///
    /// For conditional branches, both the direction (Gshare) and, when
    /// predicted taken, the target (BTB) must be right. Unconditional and
    /// indirect transfers need only the BTB target.
    pub fn predict_and_update(
        &mut self,
        pc: u64,
        kind: BranchKind,
        taken: bool,
        target: u64,
    ) -> bool {
        self.branches += 1;
        let mispredict = match kind {
            BranchKind::CondDirect => {
                let idx = ((pc >> 2) as u32 ^ self.history) & self.history_mask;
                let ctr = &mut self.pht[idx as usize];
                let pred_taken = *ctr >= 2;
                // Update the 2-bit counter.
                if taken {
                    *ctr = (*ctr + 1).min(3);
                } else {
                    *ctr = ctr.saturating_sub(1);
                }
                self.history = ((self.history << 1) | taken as u32) & self.history_mask;
                let dir_wrong = pred_taken != taken;
                let target_wrong = taken && self.btb_lookup_update(pc, target);
                dir_wrong || target_wrong
            }
            BranchKind::UncondDirect | BranchKind::Indirect | BranchKind::Return => {
                self.btb_lookup_update(pc, target)
            }
        };
        if mispredict {
            self.mispredicts += 1;
        }
        mispredict
    }

    /// Returns `true` if the BTB did not hold the correct target
    /// (and installs/updates the entry).
    fn btb_lookup_update(&mut self, pc: u64, target: u64) -> bool {
        let idx = ((pc >> 2) & self.btb_mask) as usize;
        let wrong = self.btb_tags[idx] != pc || self.btb_targets[idx] != target;
        self.btb_tags[idx] = pc;
        self.btb_targets[idx] = target;
        wrong
    }

    /// Global history register, for the block-memo pre-walk.
    pub(crate) fn history(&self) -> u32 {
        self.history
    }

    /// Restores the global history register.
    pub(crate) fn set_history(&mut self, h: u32) {
        self.history = h;
    }

    /// Gshare history/index mask.
    pub(crate) fn history_mask(&self) -> u32 {
        self.history_mask
    }

    /// BTB index mask.
    pub(crate) fn btb_mask(&self) -> u64 {
        self.btb_mask
    }

    /// One PHT counter.
    pub(crate) fn pht_entry(&self, idx: usize) -> u8 {
        self.pht[idx]
    }

    /// Restores one PHT counter.
    pub(crate) fn set_pht_entry(&mut self, idx: usize, v: u8) {
        self.pht[idx] = v;
    }

    /// One BTB entry as `(tag, target)`.
    pub(crate) fn btb_entry(&self, idx: usize) -> (u64, u64) {
        (self.btb_tags[idx], self.btb_targets[idx])
    }

    /// Restores one BTB entry.
    pub(crate) fn set_btb_entry(&mut self, idx: usize, tag: u64, target: u64) {
        self.btb_tags[idx] = tag;
        self.btb_targets[idx] = target;
    }

    /// Branch/mispredict counters as a pair.
    pub(crate) fn counter_pair(&self) -> (u64, u64) {
        (self.branches, self.mispredicts)
    }

    /// Bulk-advances the counters by recorded deltas.
    pub(crate) fn add_counter_deltas(&mut self, branches: u64, mispredicts: u64) {
        self.branches += branches;
        self.mispredicts += mispredicts;
    }

    /// Control transfers observed.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredictions observed.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate (0 if no branches).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Predictor {
        Predictor::new(12, 1024)
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut pred = p();
        // Always-taken branch at a fixed pc: once the global history
        // saturates (12 bits) and the counter trains, no mispredicts.
        for _ in 0..50 {
            pred.predict_and_update(0x100, BranchKind::CondDirect, true, 0x200);
        }
        let before = pred.mispredicts();
        for _ in 0..100 {
            pred.predict_and_update(0x100, BranchKind::CondDirect, true, 0x200);
        }
        assert_eq!(pred.mispredicts(), before, "steady-state biased branch");
    }

    #[test]
    fn learns_an_alternating_branch_via_history() {
        let mut pred = p();
        // Strict alternation is a history pattern Gshare captures.
        for i in 0..200 {
            pred.predict_and_update(0x300, BranchKind::CondDirect, i % 2 == 0, 0x400);
        }
        let before = pred.mispredicts();
        for i in 0..100 {
            pred.predict_and_update(0x300, BranchKind::CondDirect, i % 2 == 0, 0x400);
        }
        assert_eq!(pred.mispredicts(), before);
    }

    #[test]
    fn btb_miss_on_first_sight_then_hit() {
        let mut pred = p();
        assert!(pred.predict_and_update(0x500, BranchKind::UncondDirect, true, 0x900));
        assert!(!pred.predict_and_update(0x500, BranchKind::UncondDirect, true, 0x900));
    }

    #[test]
    fn varying_indirect_targets_keep_missing() {
        let mut pred = p();
        let mut miss = 0;
        for t in 0..50u64 {
            if pred.predict_and_update(0x600, BranchKind::Indirect, true, 0x1000 + t * 8) {
                miss += 1;
            }
        }
        assert_eq!(miss, 50, "a new target every time defeats the BTB");
        assert!((pred.mispredict_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stable_return_site_predicts() {
        let mut pred = p();
        pred.predict_and_update(0x700, BranchKind::Return, true, 0x123);
        assert!(!pred.predict_and_update(0x700, BranchKind::Return, true, 0x123));
        // A different return target mispredicts (no RAS).
        assert!(pred.predict_and_update(0x700, BranchKind::Return, true, 0x456));
    }
}
