//! The memory system: split L1s, unified L2, data TLB and stride
//! prefetcher, with switchable sharing between the software layer and
//! the application.
//!
//! Under [`Interaction::Shared`] both entities contend for one set of
//! structures — TOL's data-intensive code-cache lookups evict application
//! lines and vice versa (the "ping-pong" effect of Sec. III-D). Under
//! [`Interaction::Isolated`] each entity gets private copies, which is
//! the counterfactual used by Figs. 10 and 11. Demand statistics are
//! always kept per owner so miss rates can be reported per entity either
//! way.

use crate::cache::{Cache, Lookup, SetState};
use crate::config::{Interaction, TimingConfig};
use crate::prefetch::{Entry, StridePrefetcher};
use crate::tlb::Tlb;
use darco_host::layout::is_guest_addr;
use darco_host::Owner;
use std::collections::HashSet;

/// Outcome of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Total latency in cycles (TLB + cache hierarchy).
    pub latency: u32,
    /// Missed in the L1 data cache.
    pub l1_miss: bool,
    /// Missed in the L2 as well.
    pub l2_miss: bool,
}

/// Outcome of an instruction fetch access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstAccess {
    /// Fetch latency in cycles.
    pub latency: u32,
    /// Missed in the L1 instruction cache.
    pub l1_miss: bool,
}

/// Per-owner demand counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct OwnerMemStats {
    /// Demand data accesses.
    pub d_accesses: u64,
    /// L1-D demand misses.
    pub d_misses: u64,
    /// Instruction-fetch line accesses.
    pub i_accesses: u64,
    /// L1-I misses.
    pub i_misses: u64,
    /// Data TLB walks.
    pub tlb_walks: u64,
    /// Software prefetches issued (the layer's optional pass).
    pub sw_prefetches: u64,
}

impl OwnerMemStats {
    /// L1-D miss rate (0 when idle).
    pub fn d_miss_rate(&self) -> f64 {
        if self.d_accesses == 0 {
            0.0
        } else {
            self.d_misses as f64 / self.d_accesses as f64
        }
    }

    /// L1-I miss rate (0 when idle).
    pub fn i_miss_rate(&self) -> f64 {
        if self.i_accesses == 0 {
            0.0
        } else {
            self.i_misses as f64 / self.i_accesses as f64
        }
    }
}

/// Sentinel for "no previous L1-D line": real line numbers fit in 58
/// bits (lines are at least 2 bytes).
const NO_LINE: u64 = u64::MAX;

/// The modeled cache/TLB/prefetch hierarchy.
#[derive(Debug)]
pub struct MemSystem {
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    tlb: Vec<Tlb>,
    prefetch: Vec<StridePrefetcher>,
    stats: [OwnerMemStats; 2],
    l1_hit: u32,
    l2_hit: u32,
    mem_lat: u32,
    shared: bool,
    /// Per-copy line number of the previous demand data access, used by
    /// the last-line hit shortcut; [`NO_LINE`] after any L1-D fill
    /// (a fill may disturb replacement state in the same set).
    last_d_line: Vec<u64>,
    d_line_shift: u32,
    shortcuts: bool,
    /// Present while a block-memo recording dispatch is in flight:
    /// captures the pre-state of everything the block touches, at first
    /// touch, before the access mutates it.
    rec: Option<Box<MemRecorder>>,
}

/// Which cache-like structure a footprint entry refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum MemUnit {
    L1I,
    L1D,
    L2,
    TlbL1,
    TlbL2,
}

const MEM_UNITS: [MemUnit; 5] =
    [MemUnit::L1I, MemUnit::L1D, MemUnit::L2, MemUnit::TlbL1, MemUnit::TlbL2];

/// First-touch pre-state capture for one recording dispatch.
#[derive(Debug, Default)]
struct MemRecorder {
    sets: Vec<(MemUnit, usize, usize, SetState)>,
    sets_seen: HashSet<(MemUnit, usize, usize)>,
    d_lines: Vec<(usize, u64)>,
    d_seen: [bool; 2],
    tlb_pages: Vec<(usize, u64)>,
    tlb_seen: [bool; 2],
    pf: Vec<(usize, usize, Entry)>,
    pf_seen: HashSet<(usize, usize)>,
    counters: Vec<u64>,
}

/// The memory-system half of a block footprint: per touched set the
/// pre/post state, the shortcut state (last line / last page) of every
/// data-touched copy, the pre/post of every consulted prefetch-table
/// slot, and bulk counter deltas. The precondition is the pre side; a
/// replay applies the post side and the deltas.
#[derive(Debug, Clone)]
pub(crate) struct MemFootprint {
    sets: Vec<(MemUnit, usize, usize, SetState, SetState)>,
    d_lines: Vec<(usize, u64, u64)>,
    tlb_pages: Vec<(usize, u64, u64)>,
    pf: Vec<(usize, usize, Entry, Entry)>,
    counter_deltas: Vec<u64>,
}

fn owner_idx(owner: Owner) -> usize {
    match owner {
        Owner::App => 0,
        Owner::Tol => 1,
    }
}

impl MemSystem {
    /// Builds the hierarchy from the configuration.
    pub fn new(cfg: &TimingConfig) -> MemSystem {
        let copies = match cfg.interaction {
            Interaction::Shared => 1,
            Interaction::Isolated => 2,
        };
        let mk = |f: &dyn Fn() -> Cache| (0..copies).map(|_| f()).collect::<Vec<_>>();
        MemSystem {
            l1i: mk(&|| Cache::with_layout(cfg.l1i, cfg.flat_mem)),
            l1d: mk(&|| Cache::with_layout(cfg.l1d, cfg.flat_mem)),
            l2: mk(&|| Cache::with_layout(cfg.l2, cfg.flat_mem)),
            tlb: (0..copies)
                .map(|_| {
                    Tlb::configured(
                        cfg.tlb1,
                        cfg.tlb2,
                        cfg.tlb_walk_latency,
                        cfg.flat_mem,
                        cfg.mem_shortcuts,
                    )
                })
                .collect(),
            prefetch: (0..copies).map(|_| StridePrefetcher::new(cfg.prefetcher_entries)).collect(),
            stats: [OwnerMemStats::default(); 2],
            l1_hit: cfg.l1d.hit_latency,
            l2_hit: cfg.l2.hit_latency,
            mem_lat: cfg.mem_latency,
            shared: copies == 1,
            last_d_line: vec![NO_LINE; copies],
            d_line_shift: cfg.l1d.block.trailing_zeros(),
            shortcuts: cfg.mem_shortcuts,
            rec: None,
        }
    }

    #[inline]
    fn copy(&self, owner: Owner) -> usize {
        if self.shared {
            0
        } else {
            owner_idx(owner)
        }
    }

    /// Performs a demand data access (load or store) for `owner` at
    /// `addr`, issued by the instruction at `pc`.
    ///
    /// The data TLB is consulted only for guest-space addresses: the
    /// software layer works with physical addresses (Sec. II-A-2).
    pub fn access_data(&mut self, owner: Owner, pc: u64, addr: u64, _is_store: bool) -> DataAccess {
        let c = self.copy(owner);
        if self.rec.is_some() {
            self.note_dline(c);
            if is_guest_addr(addr) {
                self.note_tlb(c, addr);
            }
            self.note_set(MemUnit::L1D, c, addr);
            self.note_set(MemUnit::L2, c, addr);
            self.note_pf(c, pc);
        }
        self.stats[owner_idx(owner)].d_accesses += 1;

        let line = addr >> self.d_line_shift;
        let fast_hit = self.shortcuts && line == self.last_d_line[c];

        let mut latency = 0;
        if is_guest_addr(addr) {
            let (outcome, tlb_lat) = self.tlb[c].access(addr);
            if outcome == crate::tlb::TlbOutcome::Walk {
                self.stats[owner_idx(owner)].tlb_walks += 1;
            }
            // An L1-TLB hit overlaps the cache access; only the excess
            // latency of lower levels is serialized.
            latency += tlb_lat.saturating_sub(1);
        }

        let mut l1_miss = false;
        let mut l2_miss = false;
        if fast_hit {
            // Same L1-D line as the previous demand access, with no fill
            // in between (fills clear `last_d_line`): the probe would hit
            // and its MRU re-touch would be a PLRU no-op, so only the
            // access counter needs to move.
            self.l1d[c].count_hit();
            latency += self.l1_hit;
        } else {
            l1_miss = self.l1d[c].access(addr) == Lookup::Miss;
            if l1_miss {
                self.stats[owner_idx(owner)].d_misses += 1;
                l2_miss = self.l2[c].access(addr) == Lookup::Miss;
                latency += if l2_miss { self.mem_lat } else { self.l2_hit };
            } else {
                latency += self.l1_hit;
            }
        }
        if self.shortcuts {
            self.last_d_line[c] = line;
        }

        // Stride prefetching on demand accesses. This runs on the
        // shortcut path too: the prefetcher's stride state is observable
        // through future fills.
        if let Some(pf_addr) = self.prefetch[c].observe(pc, addr) {
            if self.rec.is_some() {
                // The prefetch fill touches its own sets; their pre-state
                // is part of the footprint too (first-touch dedup makes
                // this idempotent when they alias the demand sets).
                self.note_set(MemUnit::L1D, c, pf_addr);
                self.note_set(MemUnit::L2, c, pf_addr);
            }
            if !self.l1d[c].contains(pf_addr) {
                self.l1d[c].fill(pf_addr);
                self.l2[c].fill(pf_addr);
                // The fill may have evicted or re-ordered lines in the
                // set the shortcut would vouch for.
                self.last_d_line[c] = NO_LINE;
            }
        }

        DataAccess { latency, l1_miss, l2_miss }
    }

    /// Brings a line toward the core for a software prefetch: fills L1D
    /// and L2 (and translates the page) without charging demand-miss
    /// statistics or latency.
    pub fn prefetch_fill(&mut self, owner: Owner, addr: u64) {
        let c = self.copy(owner);
        if self.rec.is_some() {
            self.note_dline(c);
            if is_guest_addr(addr) {
                self.note_tlb(c, addr);
            }
            self.note_set(MemUnit::L1D, c, addr);
            self.note_set(MemUnit::L2, c, addr);
        }
        if is_guest_addr(addr) {
            let _ = self.tlb[c].access(addr);
        }
        self.stats[owner_idx(owner)].sw_prefetches += 1;
        self.l1d[c].fill(addr);
        self.l2[c].fill(addr);
        self.last_d_line[c] = NO_LINE;
    }

    /// Performs an instruction-fetch access for the line containing `pc`.
    pub fn access_inst(&mut self, owner: Owner, pc: u64) -> InstAccess {
        let c = self.copy(owner);
        if self.rec.is_some() {
            self.note_set(MemUnit::L1I, c, pc);
            self.note_set(MemUnit::L2, c, pc);
        }
        let s = &mut self.stats[owner_idx(owner)];
        s.i_accesses += 1;
        let l1_miss = self.l1i[c].access(pc) == Lookup::Miss;
        let latency = if l1_miss {
            s.i_misses += 1;
            if self.l2[c].access(pc) == Lookup::Miss {
                self.mem_lat
            } else {
                self.l2_hit
            }
        } else {
            1
        };
        InstAccess { latency, l1_miss }
    }

    fn unit_cache(&self, u: MemUnit, c: usize) -> &Cache {
        match u {
            MemUnit::L1I => &self.l1i[c],
            MemUnit::L1D => &self.l1d[c],
            MemUnit::L2 => &self.l2[c],
            MemUnit::TlbL1 => self.tlb[c].level(0),
            MemUnit::TlbL2 => self.tlb[c].level(1),
        }
    }

    fn unit_cache_mut(&mut self, u: MemUnit, c: usize) -> &mut Cache {
        match u {
            MemUnit::L1I => &mut self.l1i[c],
            MemUnit::L1D => &mut self.l1d[c],
            MemUnit::L2 => &mut self.l2[c],
            MemUnit::TlbL1 => self.tlb[c].level_mut(0),
            MemUnit::TlbL2 => self.tlb[c].level_mut(1),
        }
    }

    /// Captures the pre-state of the set `addr` maps to in unit `u`,
    /// once per (unit, copy, set).
    fn note_set(&mut self, u: MemUnit, c: usize, addr: u64) {
        let cache = self.unit_cache(u, c);
        let set_idx = cache.set_of(addr);
        let rec = self.rec.as_mut().expect("recording");
        if rec.sets_seen.insert((u, c, set_idx)) {
            let state = self.unit_cache(u, c).capture_set(set_idx);
            self.rec.as_mut().expect("recording").sets.push((u, c, set_idx, state));
        }
    }

    /// Captures the last-line shortcut state of copy `c`, once.
    fn note_dline(&mut self, c: usize) {
        let line = self.last_d_line[c];
        let rec = self.rec.as_mut().expect("recording");
        if !rec.d_seen[c] {
            rec.d_seen[c] = true;
            rec.d_lines.push((c, line));
        }
    }

    /// Captures the TLB sets of `addr` plus the last-page shortcut state
    /// of copy `c` (the latter once per copy).
    fn note_tlb(&mut self, c: usize, addr: u64) {
        let page = self.tlb[c].last_page();
        let rec = self.rec.as_mut().expect("recording");
        if !rec.tlb_seen[c] {
            rec.tlb_seen[c] = true;
            rec.tlb_pages.push((c, page));
        }
        self.note_set(MemUnit::TlbL1, c, addr);
        self.note_set(MemUnit::TlbL2, c, addr);
    }

    /// Captures the prefetch-table slot `pc` maps to, once per slot.
    fn note_pf(&mut self, c: usize, pc: u64) {
        let Some((idx, entry)) = self.prefetch[c].entry_at(pc) else { return };
        let rec = self.rec.as_mut().expect("recording");
        if rec.pf_seen.insert((c, idx)) {
            rec.pf.push((c, idx, entry));
        }
    }

    /// All counters in one canonical order, for bulk delta replay.
    fn counters_snapshot(&self) -> Vec<u64> {
        let copies = self.l1d.len();
        let mut v = Vec::with_capacity(copies * 11 + 12);
        for c in 0..copies {
            for u in MEM_UNITS {
                let (a, m) = self.unit_cache(u, c).counter_pair();
                v.push(a);
                v.push(m);
            }
            v.push(self.prefetch[c].issued());
        }
        for s in &self.stats {
            v.extend([
                s.d_accesses,
                s.d_misses,
                s.i_accesses,
                s.i_misses,
                s.tlb_walks,
                s.sw_prefetches,
            ]);
        }
        v
    }

    /// Starts a block-memo recording dispatch: until
    /// [`MemSystem::end_record`], every access captures the pre-state of
    /// what it touches, at first touch.
    pub(crate) fn begin_record(&mut self) {
        debug_assert!(self.rec.is_none(), "nested recording");
        let mut rec = Box::<MemRecorder>::default();
        rec.counters = self.counters_snapshot();
        self.rec = Some(rec);
    }

    /// Ends a recording dispatch: pairs every captured pre-state with
    /// the corresponding post-state and computes the counter deltas.
    pub(crate) fn end_record(&mut self) -> MemFootprint {
        let rec = self.rec.take().expect("recording");
        let sets = rec
            .sets
            .into_iter()
            .map(|(u, c, set_idx, pre)| {
                let post = self.unit_cache(u, c).capture_set(set_idx);
                (u, c, set_idx, pre, post)
            })
            .collect();
        let d_lines =
            rec.d_lines.into_iter().map(|(c, pre)| (c, pre, self.last_d_line[c])).collect();
        let tlb_pages =
            rec.tlb_pages.into_iter().map(|(c, pre)| (c, pre, self.tlb[c].last_page())).collect();
        let pf =
            rec.pf.into_iter().map(|(c, idx, pre)| (c, idx, pre, self.pf_entry(c, idx))).collect();
        let now = self.counters_snapshot();
        let counter_deltas = now.iter().zip(&rec.counters).map(|(post, pre)| post - pre).collect();
        MemFootprint { sets, d_lines, tlb_pages, pf, counter_deltas }
    }

    fn pf_entry(&self, c: usize, idx: usize) -> Entry {
        // A recorded slot implies a non-empty table.
        self.prefetch[c].entry_at((idx as u64) << 2).expect("prefetcher enabled").1
    }

    /// Verifies that every structure the recorded block touched is in
    /// the exact state it was in when the footprint was recorded.
    pub(crate) fn check_pre(&self, fp: &MemFootprint) -> bool {
        fp.sets
            .iter()
            .all(|(u, c, set_idx, pre, _)| self.unit_cache(*u, *c).capture_set(*set_idx) == *pre)
            && fp.d_lines.iter().all(|(c, pre, _)| self.last_d_line[*c] == *pre)
            && fp.tlb_pages.iter().all(|(c, pre, _)| self.tlb[*c].last_page() == *pre)
            && fp.pf.iter().all(|(c, idx, pre, _)| self.pf_entry(*c, *idx) == *pre)
    }

    /// Bulk-applies a verified footprint: restores every touched set,
    /// the shortcut state, the prefetch-table slots, and advances all
    /// counters by the recorded deltas.
    pub(crate) fn apply(&mut self, fp: &MemFootprint) {
        for (u, c, set_idx, _, post) in &fp.sets {
            self.unit_cache_mut(*u, *c).restore_set(*set_idx, post);
        }
        for (c, _, post) in &fp.d_lines {
            self.last_d_line[*c] = *post;
        }
        for (c, _, post) in &fp.tlb_pages {
            self.tlb[*c].set_last_page(*post);
        }
        for (c, idx, _, post) in &fp.pf {
            self.prefetch[*c].set_entry(*idx, *post);
        }
        let copies = self.l1d.len();
        let mut it = fp.counter_deltas.iter().copied();
        let mut next = || it.next().expect("delta layout matches snapshot layout");
        for c in 0..copies {
            for u in MEM_UNITS {
                let (a, m) = (next(), next());
                self.unit_cache_mut(u, c).add_counter_deltas(a, m);
            }
            let n = next();
            self.prefetch[c].add_issued(n);
        }
        for i in 0..2 {
            let s = &mut self.stats[i];
            s.d_accesses += next();
            s.d_misses += next();
            s.i_accesses += next();
            s.i_misses += next();
            s.tlb_walks += next();
            s.sw_prefetches += next();
        }
    }

    /// Per-owner demand statistics.
    pub fn owner_stats(&self, owner: Owner) -> OwnerMemStats {
        self.stats[owner_idx(owner)]
    }

    /// Total prefetches issued.
    pub fn prefetches(&self) -> u64 {
        self.prefetch.iter().map(|p| p.issued()).sum()
    }

    /// L1-I line size in bytes (for the pipeline's fetch grouping).
    pub fn i_line_bytes(&self) -> u64 {
        self.l1i[0].block_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_host::layout::TOL_DATA_BASE;

    fn shared() -> MemSystem {
        MemSystem::new(&TimingConfig::default())
    }

    #[test]
    fn data_hit_miss_latencies() {
        let mut m = shared();
        // Cold: TLB walk (128 - 1 overlapped) + memory (128).
        let a = m.access_data(Owner::App, 0x10, 0x8000, false);
        assert!(a.l1_miss && a.l2_miss);
        assert_eq!(a.latency, 127 + 128);
        // Warm: TLB L1 hit (overlapped) + L1D hit.
        let b = m.access_data(Owner::App, 0x10, 0x8000, false);
        assert!(!b.l1_miss);
        assert_eq!(b.latency, 1);
    }

    #[test]
    fn tol_addresses_skip_tlb() {
        let mut m = shared();
        let a = m.access_data(Owner::Tol, 0x10, TOL_DATA_BASE + 0x100, false);
        assert!(a.l1_miss && a.l2_miss);
        assert_eq!(a.latency, 128, "no TLB serialization for physical TOL data");
        assert_eq!(m.owner_stats(Owner::Tol).tlb_walks, 0);
    }

    #[test]
    fn sharing_pollutes_isolation_does_not() {
        // App touches a line; TOL then floods the same set under Shared,
        // evicting it. Under Isolated the app line survives.
        let run = |interaction: Interaction| {
            let cfg = TimingConfig { interaction, ..TimingConfig::default() };
            let mut m = MemSystem::new(&cfg);
            m.access_data(Owner::App, 0x10, 0x4000, false);
            // 4-way L1D, 128 sets, 64B lines: stride 8192 stays in one set.
            for i in 0..8u64 {
                m.access_data(Owner::Tol, 0x20, TOL_DATA_BASE + 0x4000 + i * 8192, false);
            }
            let again = m.access_data(Owner::App, 0x10, 0x4000, false);
            again.l1_miss
        };
        assert!(run(Interaction::Shared), "shared: TOL evicted the app line");
        assert!(!run(Interaction::Isolated), "isolated: app line survives");
    }

    #[test]
    fn per_owner_stats_tracked_even_when_shared() {
        let mut m = shared();
        m.access_data(Owner::App, 0x10, 0x1000, false);
        m.access_data(Owner::Tol, 0x20, TOL_DATA_BASE, true);
        assert_eq!(m.owner_stats(Owner::App).d_accesses, 1);
        assert_eq!(m.owner_stats(Owner::Tol).d_accesses, 1);
        assert_eq!(m.owner_stats(Owner::App).d_misses, 1);
    }

    #[test]
    fn inst_fetch_path() {
        let mut m = shared();
        let a = m.access_inst(Owner::App, 0x100);
        assert!(a.l1_miss);
        assert_eq!(a.latency, 128);
        let b = m.access_inst(Owner::App, 0x104);
        assert!(!b.l1_miss);
        assert_eq!(b.latency, 1);
        assert!(m.owner_stats(Owner::App).i_miss_rate() < 1.0);
    }

    #[test]
    fn fast_paths_match_full_probe_oracle() {
        // Flat layout + shortcuts vs legacy layout + full probes on a
        // mixed stream (repeats, strides, sw prefetches, both owners):
        // every access result and all counters must be identical.
        let fast = TimingConfig::default();
        let slow = TimingConfig { flat_mem: false, mem_shortcuts: false, ..fast.clone() };
        let mut f = MemSystem::new(&fast);
        let mut s = MemSystem::new(&slow);
        let mut x = 0x853C_49E6_748F_EA9Bu64;
        for i in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let owner = if x & 8 == 0 { Owner::App } else { Owner::Tol };
            let base = if owner == Owner::App { 0 } else { TOL_DATA_BASE };
            let addr = match i % 4 {
                0 => base + (x % 0x40_0000),        // random
                3 => base + (i % 512) * 8,          // sw-prefetch target pool
                _ => base + (i / 7) * 8 % 0x1_0000, // strided with repeats
            };
            let pc = 0x100 + (x % 64) * 4;
            if i % 11 == 0 {
                f.prefetch_fill(owner, addr);
                s.prefetch_fill(owner, addr);
            } else {
                assert_eq!(
                    f.access_data(owner, pc, addr, x & 16 == 0),
                    s.access_data(owner, pc, addr, x & 16 == 0),
                    "access {i}"
                );
            }
            if i % 5 == 0 {
                assert_eq!(f.access_inst(owner, pc), s.access_inst(owner, pc));
            }
        }
        for o in [Owner::App, Owner::Tol] {
            let (a, b) = (f.owner_stats(o), s.owner_stats(o));
            assert_eq!(a.d_accesses, b.d_accesses);
            assert_eq!(a.d_misses, b.d_misses);
            assert_eq!(a.i_misses, b.i_misses);
            assert_eq!(a.tlb_walks, b.tlb_walks);
            assert_eq!(a.sw_prefetches, b.sw_prefetches);
        }
        assert_eq!(f.prefetches(), s.prefetches());
    }

    #[test]
    fn prefetcher_hides_stream_misses() {
        let mut m = shared();
        let pc = 0x500;
        let mut misses = 0;
        for i in 0..64u64 {
            let a = m.access_data(Owner::App, pc, 0x10000 + i * 64, false);
            if a.l1_miss {
                misses += 1;
            }
        }
        assert!(m.prefetches() > 0);
        // Far fewer misses than lines touched once prefetching kicks in.
        assert!(misses < 32, "prefetcher should cover the stream, got {misses}");
    }
}
