//! Execution statistics: cycles, per-component instruction counts and
//! bubble attribution.
//!
//! The categories mirror the paper's figures: components are the Fig. 6/7
//! execution-time breakdown, bubble causes are the Fig. 9/11 stall
//! classes, and per-owner miss/misprediction rates feed Fig. 8.

use darco_host::{Component, Owner};
use serde::{Deserialize, Serialize};

/// Why an issue slot went unused (the paper's bubble sources, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BubbleCause {
    /// Waiting on data from a load that missed in the L1 D-cache.
    DCacheMiss,
    /// Front-end starved by an instruction-cache miss.
    ICacheMiss,
    /// Front-end resteered after a branch misprediction.
    Branch,
    /// IQ could not issue: data dependence on an in-flight (non-missing)
    /// producer or execution-unit unavailability.
    Scheduling,
}

impl BubbleCause {
    /// All causes in Fig. 9 legend order.
    pub const ALL: [BubbleCause; 4] = [
        BubbleCause::DCacheMiss,
        BubbleCause::ICacheMiss,
        BubbleCause::Branch,
        BubbleCause::Scheduling,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            BubbleCause::DCacheMiss => "D$ miss bubbles",
            BubbleCause::ICacheMiss => "I$ miss bubbles",
            BubbleCause::Branch => "Branch bubbles",
            BubbleCause::Scheduling => "Instruction scheduling",
        }
    }

    fn index(self) -> usize {
        match self {
            BubbleCause::DCacheMiss => 0,
            BubbleCause::ICacheMiss => 1,
            BubbleCause::Branch => 2,
            BubbleCause::Scheduling => 3,
        }
    }
}

fn comp_index(c: Component) -> usize {
    match c {
        Component::AppCode => 0,
        Component::TolOthers => 1,
        Component::TolIm => 2,
        Component::TolBbm => 3,
        Component::TolSbm => 4,
        Component::TolChaining => 5,
        Component::TolLookup => 6,
    }
}

/// Aggregated timing results for one simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Stats {
    /// Total execution cycles (completion time of the last instruction).
    pub total_cycles: u64,
    /// Retired instructions per component.
    pub insts: [u64; 7],
    /// Bubble cycles per component per cause.
    pub bubbles: [[f64; 4]; 7],
    /// Demand L1-D accesses/misses per owner `[app, tol]`.
    pub d_accesses: [u64; 2],
    /// Demand L1-D misses per owner.
    pub d_misses: [u64; 2],
    /// L1-I line accesses per owner.
    pub i_accesses: [u64; 2],
    /// L1-I misses per owner.
    pub i_misses: [u64; 2],
    /// Control transfers per owner.
    pub branches: [u64; 2],
    /// Mispredictions per owner.
    pub mispredicts: [u64; 2],
    /// Prefetches issued.
    pub prefetches: u64,
    /// Issue width the run was configured with (for time accounting).
    pub issue_width: u32,
}

fn owner_idx(o: Owner) -> usize {
    match o {
        Owner::App => 0,
        Owner::Tol => 1,
    }
}

impl Stats {
    /// Records one retired instruction.
    pub(crate) fn count_inst(&mut self, c: Component) {
        self.insts[comp_index(c)] += 1;
    }

    /// Records bubble cycles.
    pub(crate) fn add_bubble(&mut self, c: Component, cause: BubbleCause, cycles: f64) {
        self.bubbles[comp_index(c)][cause.index()] += cycles;
    }

    /// Instructions retired by a component.
    pub fn component_insts(&self, c: Component) -> u64 {
        self.insts[comp_index(c)]
    }

    /// Total retired instructions.
    pub fn total_insts(&self) -> u64 {
        self.insts.iter().sum()
    }

    /// Instructions retired by an owner.
    pub fn owner_insts(&self, o: Owner) -> u64 {
        Component::ALL.iter().filter(|c| c.owner() == o).map(|c| self.component_insts(*c)).sum()
    }

    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_insts() as f64 / self.total_cycles as f64
        }
    }

    /// Bubble cycles of one cause for a component.
    pub fn component_bubbles(&self, c: Component, cause: BubbleCause) -> f64 {
        self.bubbles[comp_index(c)][cause.index()]
    }

    /// Bubble cycles of one cause for an owner.
    pub fn owner_bubbles(&self, o: Owner, cause: BubbleCause) -> f64 {
        Component::ALL
            .iter()
            .filter(|c| c.owner() == o)
            .map(|c| self.component_bubbles(*c, cause))
            .sum()
    }

    /// All bubble cycles for an owner.
    pub fn owner_bubble_total(&self, o: Owner) -> f64 {
        BubbleCause::ALL.iter().map(|b| self.owner_bubbles(o, *b)).sum()
    }

    /// Cycles spent retiring a component's instructions (`insts / width`).
    pub fn component_inst_cycles(&self, c: Component) -> f64 {
        self.component_insts(c) as f64 / self.issue_width.max(1) as f64
    }

    /// Estimated execution time attributable to a component: its retire
    /// cycles plus the bubbles its instructions caused. This is the
    /// quantity behind the Fig. 6/7 breakdowns.
    pub fn component_time(&self, c: Component) -> f64 {
        self.component_inst_cycles(c)
            + BubbleCause::ALL.iter().map(|b| self.component_bubbles(c, *b)).sum::<f64>()
    }

    /// Total attributed time (≈ `total_cycles`).
    pub fn attributed_time(&self) -> f64 {
        Component::ALL.iter().map(|c| self.component_time(*c)).sum()
    }

    /// Fraction of attributed time spent in a component.
    pub fn component_share(&self, c: Component) -> f64 {
        let t = self.attributed_time();
        if t == 0.0 {
            0.0
        } else {
            self.component_time(c) / t
        }
    }

    /// Fraction of attributed time that is software-layer overhead
    /// (everything but `AppCode` — interpretation counts as overhead, as
    /// in the paper, Sec. III-B).
    pub fn tol_overhead_share(&self) -> f64 {
        1.0 - self.component_share(Component::AppCode)
    }

    /// L1-D miss rate per owner.
    pub fn d_miss_rate(&self, o: Owner) -> f64 {
        let i = owner_idx(o);
        if self.d_accesses[i] == 0 {
            0.0
        } else {
            self.d_misses[i] as f64 / self.d_accesses[i] as f64
        }
    }

    /// L1-I miss rate per owner.
    pub fn i_miss_rate(&self, o: Owner) -> f64 {
        let i = owner_idx(o);
        if self.i_accesses[i] == 0 {
            0.0
        } else {
            self.i_misses[i] as f64 / self.i_accesses[i] as f64
        }
    }

    /// Branch misprediction rate per owner.
    pub fn mispredict_rate(&self, o: Owner) -> f64 {
        let i = owner_idx(o);
        if self.branches[i] == 0 {
            0.0
        } else {
            self.mispredicts[i] as f64 / self.branches[i] as f64
        }
    }

    pub(crate) fn record_branch(&mut self, o: Owner, mispredicted: bool) {
        let i = owner_idx(o);
        self.branches[i] += 1;
        if mispredicted {
            self.mispredicts[i] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_roundtrip() {
        let mut s = Stats { issue_width: 2, ..Stats::default() };
        s.count_inst(Component::AppCode);
        s.count_inst(Component::AppCode);
        s.count_inst(Component::TolLookup);
        s.add_bubble(Component::TolLookup, BubbleCause::DCacheMiss, 3.0);
        s.total_cycles = 5;

        assert_eq!(s.total_insts(), 3);
        assert_eq!(s.owner_insts(Owner::App), 2);
        assert_eq!(s.owner_insts(Owner::Tol), 1);
        assert_eq!(s.component_inst_cycles(Component::AppCode), 1.0);
        assert_eq!(s.component_time(Component::TolLookup), 0.5 + 3.0);
        assert!(s.tol_overhead_share() > 0.7);
        assert_eq!(s.owner_bubbles(Owner::Tol, BubbleCause::DCacheMiss), 3.0);
        assert_eq!(s.owner_bubble_total(Owner::App), 0.0);
    }

    #[test]
    fn rates_guard_division_by_zero() {
        let s = Stats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.d_miss_rate(Owner::App), 0.0);
        assert_eq!(s.mispredict_rate(Owner::Tol), 0.0);
        assert_eq!(s.component_share(Component::AppCode), 0.0);
    }

    #[test]
    fn branch_recording() {
        let mut s = Stats::default();
        s.record_branch(Owner::App, true);
        s.record_branch(Owner::App, false);
        assert_eq!(s.branches[0], 2);
        assert_eq!(s.mispredicts[0], 1);
        assert!((s.mispredict_rate(Owner::App) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(BubbleCause::DCacheMiss.label(), "D$ miss bubbles");
        assert_eq!(BubbleCause::ALL.len(), 4);
    }
}
