//! # darco-timing — cycle-level host timing model
//!
//! Models the paper's host processor (Sec. II-A-2, Fig. 4, Table I): a
//! 2-issue **in-order** pipeline with a decoupled front-end and back-end,
//! a 16-entry instruction queue, a Gshare branch predictor with a BTB,
//! split 32 KB L1 caches, a unified 512 KB L2, a two-level data TLB and a
//! 256-entry stride prefetcher.
//!
//! The simulator is trace-driven: it consumes the retired host
//! instruction stream ([`darco_host::DynInst`]) produced by the software
//! layer and the translated application, and computes cycle counts using
//! a timestamp dataflow walk that is exact for in-order issue. Every
//! stall cycle is attributed to one of the paper's bubble classes
//! ([`BubbleCause`]: D$ miss, I$ miss, branch, instruction scheduling)
//! *and* to the component that caused it — the attribution that produces
//! Figs. 6, 7, 8, 9 and 11.
//!
//! Resource sharing between the software layer and the application is
//! switchable ([`Interaction`]): `Shared` models both entities competing
//! for caches/predictor/prefetcher state (the paper's "w/" runs),
//! `Isolated` gives each entity private copies (the "w/o" runs of
//! Fig. 10), and the pipeline can also be asked to *ignore* one entity
//! entirely (the TOL-in-isolation IPC study of Fig. 8).
//!
//! ```
//! use darco_host::stream::{int_reg, DynInst};
//! use darco_host::{Component, ExecClass};
//! use darco_timing::{Pipeline, TimingConfig};
//!
//! let mut p = Pipeline::new(TimingConfig::default());
//! // A load followed by a dependent add.
//! p.retire(
//!     &DynInst::plain(0x100, ExecClass::Load, Component::AppCode)
//!         .with_dst(int_reg(2))
//!         .with_mem(0x8000, 4, false),
//! );
//! p.retire(
//!     &DynInst::plain(0x104, ExecClass::SimpleInt, Component::AppCode)
//!         .with_srcs(int_reg(2), u8::MAX)
//!         .with_dst(int_reg(3)),
//! );
//! let stats = p.finish();
//! assert_eq!(stats.total_insts(), 2);
//! assert!(stats.total_cycles > 2, "cold miss costs cycles");
//! ```

pub mod cache;
pub mod config;
pub mod memo;
pub mod memsys;
pub mod pipeline;
pub mod plru;
pub mod predictor;
pub mod prefetch;
pub mod stats;
pub mod tlb;

pub use cache::{Cache, Lookup};
pub use config::{CacheParams, Interaction, TimingConfig, TlbParams};
pub use memo::{BlockMemo, MemoStats};
pub use memsys::MemSystem;
pub use pipeline::Pipeline;
pub use stats::{BubbleCause, Stats};
pub use tlb::Tlb;
