//! The in-order pipeline model.
//!
//! A timestamp dataflow walk over the retired instruction stream,
//! computing for every instruction when it fetches, issues and completes
//! under the front-end, instruction-queue, scoreboard (register
//! dependence), execution-unit and memory constraints of the paper's host
//! (Fig. 4). For an in-order machine this is cycle-exact for issue: an
//! instruction issues at the maximum of its constraint times, and the
//! constraint that binds is exactly what caused any stall — which gives
//! the per-cause, per-component bubble attribution of Figs. 9 and 11
//! directly, with no post-processing.
//!
//! Accounting convention (documented in DESIGN.md): a fully idle issue
//! cycle is one bubble cycle attributed to the binding constraint of the
//! next instruction to issue; a half-used issue cycle contributes
//! `1/width` bubble cycles; instruction (retire) time is `insts/width`.
//! The effective branch misprediction penalty emerges from the modeled
//! depth (fetch→EXE ≈ 6 cycles, per Table I).

use crate::config::{Interaction, TimingConfig};
use crate::memsys::MemSystem;
use crate::predictor::Predictor;
use crate::stats::{BubbleCause, Stats};
use darco_host::stream::NO_REG;
use darco_host::{Component, DynInst, ExecClass, Owner};
use std::collections::VecDeque;

pub(crate) const REGS: usize = 96; // 64 int + 32 fp

/// Trace-driven pipeline simulator; feed with [`Pipeline::retire`] and
/// collect results with [`Pipeline::finish`].
#[derive(Debug)]
pub struct Pipeline {
    pub(crate) cfg: TimingConfig,
    pub(crate) mem: MemSystem,
    pub(crate) pred: Vec<Predictor>,
    pub(crate) stats: Stats,

    pub(crate) reg_ready: [u64; REGS],
    pub(crate) reg_load_miss: [bool; REGS],
    pub(crate) reg_producer: [Component; REGS],

    pub(crate) last_issue: u64,
    pub(crate) issued_in_cycle: u32,
    pub(crate) iq_ring: VecDeque<u64>,

    pub(crate) fetch_pos: u64,
    pub(crate) fetch_in_cycle: u32,
    pub(crate) last_fetch_line: u64,
    i_line_shift: u32,
    pub(crate) redirect_at: Option<(u64, Component)>,

    // Two units per complex class (one per pipe), unpipelined.
    pub(crate) unit_free_cint: [u64; 2],
    pub(crate) unit_free_sfp: [u64; 2],
    pub(crate) unit_free_cfp: [u64; 2],

    pub(crate) max_completion: u64,

    /// Ordered log of `add_bubble` calls, active during a block-memo
    /// recording dispatch. Replaying the log applies bitwise-identical
    /// `f64` accumulations in the original order.
    pub(crate) bubble_log: Option<Vec<(Component, BubbleCause, f64)>>,

    // Block-memo fetch-clock classification counters (see memo.rs):
    // how often the decode-ready time was the binding issue constraint,
    // how often a redirect resynced the fetch clock to the issue clock,
    // and how often a pending redirect was consumed *without* a resync
    // (target time already behind the fetch position). Deltas across a
    // recording decide whether the fetch clock was observable.
    pub(crate) fetch_bound: u64,
    pub(crate) fetch_resync: u64,
    pub(crate) fetch_take_behind: u64,
}

pub(crate) fn pred_idx(interaction: Interaction, owner: Owner) -> usize {
    match (interaction, owner) {
        (Interaction::Shared, _) => 0,
        (Interaction::Isolated, Owner::App) => 0,
        (Interaction::Isolated, Owner::Tol) => 1,
    }
}

impl Pipeline {
    /// Builds a pipeline from the configuration.
    pub fn new(cfg: TimingConfig) -> Pipeline {
        let copies = match cfg.interaction {
            Interaction::Shared => 1,
            Interaction::Isolated => 2,
        };
        let mem = MemSystem::new(&cfg);
        // Line size is a power of two; cache the shift so the hot retire
        // path never divides.
        let i_line_shift = mem.i_line_bytes().trailing_zeros();
        Pipeline {
            mem,
            pred: (0..copies)
                .map(|_| Predictor::new(cfg.bp_history_bits, cfg.btb_entries))
                .collect(),
            stats: Stats { issue_width: cfg.issue_width, ..Stats::default() },
            reg_ready: [0; REGS],
            reg_load_miss: [false; REGS],
            reg_producer: [Component::AppCode; REGS],
            last_issue: 0,
            issued_in_cycle: 0,
            iq_ring: VecDeque::with_capacity(cfg.iq_size as usize + 1),
            fetch_pos: 0,
            fetch_in_cycle: 0,
            last_fetch_line: u64::MAX,
            i_line_shift,
            redirect_at: None,
            unit_free_cint: [0; 2],
            unit_free_sfp: [0; 2],
            unit_free_cfp: [0; 2],
            max_completion: 0,
            bubble_log: None,
            fetch_bound: 0,
            fetch_resync: 0,
            fetch_take_behind: 0,
            cfg,
        }
    }

    /// Processes one retired instruction.
    pub fn retire(&mut self, d: &DynInst) {
        let owner = d.owner();
        self.stats.count_inst(d.component);

        // ---- Front end ----------------------------------------------
        let mut frontend_cause: Option<(BubbleCause, Component)> = None;
        let natural = if self.fetch_in_cycle < self.cfg.issue_width {
            self.fetch_pos
        } else {
            self.fetch_pos + 1
        };
        let mut fetch = natural;
        if let Some((at, comp)) = self.redirect_at.take() {
            if at > fetch {
                fetch = at;
                frontend_cause = Some((BubbleCause::Branch, comp));
                self.fetch_resync += 1;
            } else {
                self.fetch_take_behind += 1;
            }
            self.last_fetch_line = u64::MAX; // refetch the target line
        }
        let line = d.pc >> self.i_line_shift;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            let acc = self.mem.access_inst(owner, d.pc);
            if acc.latency > 1 {
                let icache_delay = (acc.latency - 1) as u64;
                // The larger of redirect vs I$ delay dominates attribution.
                let branch_delay = fetch - natural;
                fetch += icache_delay;
                if frontend_cause.is_none() || icache_delay > branch_delay {
                    frontend_cause = Some((BubbleCause::ICacheMiss, d.component));
                }
            }
        }
        if fetch > self.fetch_pos {
            self.fetch_pos = fetch;
            self.fetch_in_cycle = 1;
        } else {
            self.fetch_in_cycle += 1;
        }

        let decode_ready = fetch + self.cfg.frontend_depth as u64;
        let iq_ready = if self.iq_ring.len() == self.cfg.iq_size as usize {
            self.iq_ring.front().copied().unwrap_or(0) + 1
        } else {
            0
        };
        let t_front = decode_ready.max(iq_ready) + 1;

        // ---- Issue constraints --------------------------------------
        let t_inorder = if self.issued_in_cycle < self.cfg.issue_width {
            self.last_issue
        } else {
            self.last_issue + 1
        };

        // `reg_ready` holds the cycle the producer's result is on the
        // bypass network (its EXE completion). The consumer reads in its
        // own EXE stage (issue + 2), so the issue-time constraint is the
        // bypass time minus the pipeline offset.
        let mut t_src_exec = 0u64;
        let mut src_load_miss = false;
        let mut src_producer = d.component;
        debug_assert!(d.ops_consistent(), "stale operand mask: {d:?}");
        let mut ops = d.ops;
        while ops != 0 {
            let slot = ops.trailing_zeros() as usize;
            ops &= ops - 1;
            // Slots 0/1 are the sources; slot 2 is dst, which
            // participates for WAW ordering on the scoreboard. The mask
            // pre-filters NO_REG, so dead slots cost nothing here.
            let s = if slot < 2 { d.srcs[slot] } else { d.dst };
            let r = self.reg_ready[s as usize];
            if r > t_src_exec {
                t_src_exec = r;
                src_load_miss = self.reg_load_miss[s as usize];
                src_producer = self.reg_producer[s as usize];
            }
        }
        let t_src = t_src_exec.saturating_sub(2);

        let (t_unit, unit_slot) = self.unit_constraint(d.class);

        let issue = t_front.max(t_inorder).max(t_src).max(t_unit);
        if issue == t_front && decode_ready >= iq_ready {
            // The fetch clock (not IQ backpressure) bound this issue
            // time: the block-memo cannot treat it as unobservable.
            self.fetch_bound += 1;
        }

        // ---- Bubble attribution -------------------------------------
        let gap = issue.saturating_sub(self.last_issue + 1) as f64;
        let partial = if issue > self.last_issue && self.issued_in_cycle > 0 {
            (self.cfg.issue_width - self.issued_in_cycle.min(self.cfg.issue_width)) as f64
                / self.cfg.issue_width as f64
        } else {
            0.0
        };
        let bubble = gap + partial;
        if bubble > 0.0 {
            let (cause, comp) = if issue == t_src && src_load_miss {
                (BubbleCause::DCacheMiss, src_producer)
            } else if issue == t_front && frontend_cause.is_some() {
                frontend_cause.unwrap()
            } else if issue == t_src || issue == t_unit {
                (BubbleCause::Scheduling, d.component)
            } else {
                // Front-end rate or in-order width limitation.
                (BubbleCause::Scheduling, d.component)
            };
            self.stats.add_bubble(comp, cause, bubble);
            if let Some(log) = &mut self.bubble_log {
                log.push((comp, cause, bubble));
            }
        }

        if issue > self.last_issue {
            self.last_issue = issue;
            self.issued_in_cycle = 1;
        } else {
            self.issued_in_cycle += 1;
        }
        self.iq_ring.push_back(issue);
        if self.iq_ring.len() > self.cfg.iq_size as usize {
            self.iq_ring.pop_front();
        }

        // ---- Execute ------------------------------------------------
        let exec = issue + 2; // ISSUE -> RR -> EXE
        let mut load_missed = false;
        let latency = match d.class {
            ExecClass::SimpleInt => self.cfg.lat_simple_int as u64,
            ExecClass::ComplexInt => self.cfg.lat_complex_int as u64,
            ExecClass::SimpleFp => self.cfg.lat_simple_fp as u64,
            ExecClass::ComplexFp => self.cfg.lat_complex_fp as u64,
            ExecClass::Load | ExecClass::Store => {
                if let Some(m) = d.mem {
                    if m.is_prefetch {
                        // Software prefetch: fire-and-forget line fill —
                        // occupies an issue slot but never stalls.
                        self.mem.prefetch_fill(owner, m.addr);
                        1
                    } else {
                        let acc = self.mem.access_data(owner, d.pc, m.addr, m.is_store);
                        if d.class == ExecClass::Load {
                            // Any latency beyond the L1 hit (cache miss
                            // or TLB serialization) is a memory-system
                            // stall for attribution purposes.
                            load_missed = acc.latency > self.cfg.l1d.hit_latency;
                            acc.latency as u64
                        } else {
                            1 // stores retire via the store buffer
                        }
                    }
                } else {
                    1
                }
            }
            ExecClass::Branch | ExecClass::Jump => 1,
        };
        if let Some(slot) = unit_slot {
            // Unpipelined unit: the next same-class op's EXE must start
            // after this one finishes, i.e. its issue is `latency` later.
            self.set_unit_busy(d.class, slot, issue + latency);
        }
        let complete = exec + latency;
        self.max_completion = self.max_completion.max(complete);

        if d.dst != NO_REG {
            let i = d.dst as usize;
            self.reg_ready[i] = complete;
            self.reg_load_miss[i] = load_missed;
            self.reg_producer[i] = d.component;
        }

        // ---- Control flow -------------------------------------------
        if let Some((kind, target, taken)) = d.branch {
            let p = &mut self.pred[pred_idx(self.cfg.interaction, owner)];
            let mispredict = p.predict_and_update(d.pc, kind, taken, target);
            self.stats.record_branch(owner, mispredict);
            if mispredict {
                // Resolved in EXE; resteer the cycle after.
                self.redirect_at = Some((exec + 1, d.component));
            }
        }
    }

    fn unit_constraint(&self, class: ExecClass) -> (u64, Option<usize>) {
        let pool = match class {
            ExecClass::ComplexInt => &self.unit_free_cint,
            ExecClass::SimpleFp => &self.unit_free_sfp,
            ExecClass::ComplexFp => &self.unit_free_cfp,
            _ => return (0, None),
        };
        let (slot, &t) =
            pool.iter().enumerate().min_by_key(|(_, &t)| t).expect("unit pool is non-empty");
        (t, Some(slot))
    }

    fn set_unit_busy(&mut self, class: ExecClass, slot: usize, until: u64) {
        let pool = match class {
            ExecClass::ComplexInt => &mut self.unit_free_cint,
            ExecClass::SimpleFp => &mut self.unit_free_sfp,
            ExecClass::ComplexFp => &mut self.unit_free_cfp,
            _ => return,
        };
        pool[slot] = until;
    }

    /// Completes the run and returns the statistics.
    pub fn finish(mut self) -> Stats {
        self.stats.total_cycles = self.max_completion;
        for (i, owner) in [Owner::App, Owner::Tol].into_iter().enumerate() {
            let m = self.mem.owner_stats(owner);
            self.stats.d_accesses[i] = m.d_accesses;
            self.stats.d_misses[i] = m.d_misses;
            self.stats.i_accesses[i] = m.i_accesses;
            self.stats.i_misses[i] = m.i_misses;
        }
        self.stats.prefetches = self.mem.prefetches();
        self.stats
    }

    /// Read-only view of the running statistics (cycle and memory-system
    /// totals are only filled by [`Pipeline::finish`]/[`Pipeline::snapshot`]).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Cycles elapsed so far (the completion time of the latest-finishing
    /// instruction) — the same value [`Pipeline::snapshot`] reports as
    /// `total_cycles`, without cloning the statistics.
    pub fn cycles_so_far(&self) -> u64 {
        self.max_completion
    }

    /// A complete statistics snapshot at the current point, without
    /// consuming the pipeline.
    pub fn snapshot(&self) -> Stats {
        let mut s = self.stats.clone();
        s.total_cycles = self.max_completion;
        for (i, owner) in [Owner::App, Owner::Tol].into_iter().enumerate() {
            let m = self.mem.owner_stats(owner);
            s.d_accesses[i] = m.d_accesses;
            s.d_misses[i] = m.d_misses;
            s.i_accesses[i] = m.i_accesses;
            s.i_misses[i] = m.i_misses;
        }
        s.prefetches = self.mem.prefetches();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_host::stream::{int_reg, DynInst};
    use darco_host::BranchKind;

    fn simple(pc: u64) -> DynInst {
        DynInst::plain(pc, ExecClass::SimpleInt, Component::AppCode)
    }

    /// Warm up the I-cache over a tiny loop footprint so fetch effects
    /// vanish, then measure.
    fn run_loop(insts: &[DynInst], iters: usize) -> Stats {
        let mut p = Pipeline::new(TimingConfig::default());
        for _ in 0..iters {
            for d in insts {
                p.retire(d);
            }
        }
        p.finish()
    }

    #[test]
    fn independent_stream_reaches_full_width() {
        // Independent simple ints at distinct pcs within one line.
        let insts: Vec<DynInst> = (0..8).map(|i| simple(i * 4)).collect();
        let s = run_loop(&insts, 20_000);
        assert!(s.ipc() > 1.9, "ipc = {}", s.ipc());
    }

    #[test]
    fn dependent_chain_halves_throughput() {
        // Each instruction reads the previous one's destination.
        let insts: Vec<DynInst> = (0..8)
            .map(|i| simple(i * 4).with_dst(int_reg(1)).with_srcs(int_reg(1), NO_REG))
            .collect();
        let s = run_loop(&insts, 20_000);
        assert!(s.ipc() < 1.1, "ipc = {}", s.ipc());
        // The stall shows up as scheduling bubbles.
        assert!(
            s.owner_bubbles(Owner::App, BubbleCause::Scheduling) > 0.0,
            "dependence stalls must be scheduling bubbles"
        );
    }

    #[test]
    fn load_misses_become_dcache_bubbles() {
        // A pointer-chase over a footprint far beyond L2, consumer
        // immediately dependent.
        let mut p = Pipeline::new(TimingConfig::default());
        let mut x = 0x12345678u64;
        for _ in 0..50_000u64 {
            // xorshift scramble: no stable stride for the prefetcher.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = (x % (1 << 24)) * 64;
            let ld = DynInst::plain(0x100, ExecClass::Load, Component::AppCode)
                .with_dst(int_reg(2))
                .with_mem(addr, 4, false);
            let use_it = simple(0x104).with_srcs(int_reg(2), NO_REG).with_dst(int_reg(3));
            p.retire(&ld);
            p.retire(&use_it);
        }
        let s = p.finish();
        let d = s.owner_bubbles(Owner::App, BubbleCause::DCacheMiss);
        assert!(d > 0.0);
        assert!(
            d > s.owner_bubbles(Owner::App, BubbleCause::Scheduling),
            "memory-bound loop must be dominated by D$ bubbles"
        );
        assert!(s.ipc() < 0.2, "ipc = {}", s.ipc());
    }

    #[test]
    fn mispredicted_branches_cost_about_six_cycles() {
        // A data-dependent (unpredictable-target) indirect jump per
        // iteration: every one mispredicts.
        let mut p = Pipeline::new(TimingConfig::default());
        let n = 10_000u64;
        for i in 0..n {
            p.retire(&simple(0x0));
            p.retire(&DynInst::plain(0x4, ExecClass::Jump, Component::AppCode).with_branch(
                BranchKind::Indirect,
                0x1000 + (i % 64) * 128, // changing targets defeat the BTB
                true,
            ));
        }
        let s = p.finish();
        assert!(s.mispredict_rate(Owner::App) > 0.9);
        let br = s.owner_bubbles(Owner::App, BubbleCause::Branch);
        let per_branch = br / n as f64;
        assert!(
            (4.0..8.0).contains(&per_branch),
            "effective penalty should be about 6 cycles, got {per_branch}"
        );
    }

    #[test]
    fn giant_code_footprint_creates_icache_bubbles() {
        // Walk 4 MB of code once per iteration: everything misses L1I.
        let mut p = Pipeline::new(TimingConfig::default());
        for rep in 0..4u64 {
            for i in 0..20_000u64 {
                // One instruction per 64B line, strided to defeat reuse.
                p.retire(&simple(rep + i * 64 * 7));
            }
        }
        let s = p.finish();
        assert!(
            s.owner_bubbles(Owner::App, BubbleCause::ICacheMiss) > 0.0,
            "line-crossing misses must produce I$ bubbles"
        );
        assert!(s.i_miss_rate(Owner::App) > 0.5);
    }

    #[test]
    fn attributed_time_tracks_total_cycles() {
        let insts: Vec<DynInst> = (0..16)
            .map(|i| {
                if i % 4 == 0 {
                    DynInst::plain(i * 4, ExecClass::Load, Component::AppCode)
                        .with_dst(int_reg(2))
                        .with_mem(0x2000 + (i % 8) * 64, 4, false)
                } else {
                    simple(i * 4).with_srcs(int_reg(2), NO_REG).with_dst(int_reg(4))
                }
            })
            .collect();
        let s = run_loop(&insts, 5_000);
        let attributed = s.attributed_time();
        let total = s.total_cycles as f64;
        let err = (attributed - total).abs() / total;
        assert!(err < 0.15, "attribution error {err} (attributed {attributed}, total {total})");
    }

    #[test]
    fn complex_units_serialize() {
        // Four independent FP divides per "cycle group" contend for the
        // two unpipelined complex FP units.
        let insts: Vec<DynInst> = (0..8)
            .map(|i| DynInst::plain(i * 4, ExecClass::ComplexFp, Component::AppCode))
            .collect();
        let s = run_loop(&insts, 5_000);
        // Two 5-cycle unpipelined units sustain at most 2/5 inst/cycle.
        assert!(s.ipc() < 0.45, "ipc = {}", s.ipc());
    }

    #[test]
    fn isolated_resources_remove_cross_owner_pollution() {
        // A mixed stream where TOL probes conflict with app lines: the
        // Interaction::Isolated configuration (private structures per
        // owner) must finish no slower-per-owner than the shared one.
        let feed = |p: &mut Pipeline| {
            for i in 0..40_000u64 {
                p.retire(
                    &DynInst::plain(0x100, ExecClass::Load, Component::AppCode)
                        .with_dst(int_reg(2))
                        .with_mem(0x4000 + (i % 4) * 8192, 4, false),
                );
                p.retire(
                    &DynInst::plain(
                        darco_host::layout::TOL_CODE_BASE,
                        ExecClass::Load,
                        Component::TolLookup,
                    )
                    .with_dst(int_reg(40))
                    .with_mem(
                        darco_host::layout::TOL_DATA_BASE + 0x4000 + (i % 8) * 8192,
                        8,
                        false,
                    ),
                );
            }
        };
        let mut shared = Pipeline::new(TimingConfig::default());
        feed(&mut shared);
        let s = shared.finish();
        let mut isolated = Pipeline::new(TimingConfig::isolated());
        feed(&mut isolated);
        let i = isolated.finish();
        assert!(
            i.d_miss_rate(Owner::App) <= s.d_miss_rate(Owner::App),
            "isolation cannot increase the app's miss rate: {} vs {}",
            i.d_miss_rate(Owner::App),
            s.d_miss_rate(Owner::App)
        );
        assert!(i.total_cycles <= s.total_cycles);
    }

    #[test]
    fn software_prefetch_fills_without_stalling() {
        let mut p = Pipeline::new(TimingConfig::default());
        // Prefetch a line, then load from it: the load must hit.
        p.retire(&DynInst::plain(0x100, ExecClass::Load, Component::AppCode).with_prefetch(0x9000));
        // Spacer work so the (modelled-as-instant) fill precedes the load.
        for i in 0..4 {
            p.retire(&simple(0x104 + i * 4));
        }
        p.retire(
            &DynInst::plain(0x200, ExecClass::Load, Component::AppCode)
                .with_dst(int_reg(2))
                .with_mem(0x9000, 4, false),
        );
        let s = p.finish();
        assert_eq!(s.d_misses[0], 0, "prefetched line must hit");
        assert_eq!(s.prefetches, 0, "software prefetches are not HW-prefetcher issues");
    }

    #[test]
    fn tol_and_app_attribution_separate() {
        let mut p = Pipeline::new(TimingConfig::default());
        for i in 0..20_000u64 {
            p.retire(&simple(i % 64));
            let tol = DynInst::plain(
                darco_host::layout::TOL_CODE_BASE + (i % 16) * 4,
                ExecClass::Load,
                Component::TolLookup,
            )
            .with_dst(int_reg(40))
            .with_mem(
                darco_host::layout::TOL_DATA_BASE + (i * 4099 * 64) % (1 << 26),
                8,
                false,
            );
            p.retire(&tol);
            // TOL consumer of the probe.
            p.retire(
                &DynInst::plain(
                    darco_host::layout::TOL_CODE_BASE + 0x40,
                    ExecClass::SimpleInt,
                    Component::TolLookup,
                )
                .with_srcs(int_reg(40), NO_REG)
                .with_dst(int_reg(41)),
            );
        }
        let s = p.finish();
        assert!(s.owner_insts(Owner::Tol) > 0);
        assert!(s.owner_insts(Owner::App) > 0);
        assert!(
            s.owner_bubbles(Owner::Tol, BubbleCause::DCacheMiss)
                > s.owner_bubbles(Owner::App, BubbleCause::DCacheMiss),
            "TOL's scattered probes must own the D$ bubbles"
        );
        assert!(s.component_time(Component::TolLookup) > 0.0);
    }
}
