//! Steady-state block timing memoization.
//!
//! The engine emits one `BlockRetire` macro-event for a translated block
//! whose retired instruction stream has been proven iteration-invariant
//! (same `DynInst`s, same addresses). This module gives the timing layer
//! a matching fast path: the first dispatch of such a block *records* a
//! footprint — everything the block's timing depends on, expressed
//! relative to the pipeline's time base — and every later dispatch
//! *replays* it by bulk-applying the recorded deltas, with no
//! per-instruction walk and no per-access cache/TLB probes.
//!
//! Correctness pin: a replay must be **bitwise identical** to expanding
//! the block through [`Pipeline::retire`]. The footprint therefore holds
//!
//! * a **precondition** — the pre-state of every register, execution
//!   unit, IQ slot, front-end scalar, predictor entry, cache/TLB set,
//!   prefetch-table slot and shortcut register the block reads, with all
//!   time values taken relative to the base `B = last_issue` at dispatch
//!   (values at or below the base are *stale*: they can never constrain
//!   issue, so only their staleness is pinned, not their value), and
//! * a **post-image** — the same locations after the block, plus bulk
//!   counter deltas and the ordered log of `f64` bubble accumulations
//!   (replayed in order, additions are bitwise reproducible).
//!
//! If the precondition fails — an eviction, a predictor drift, anything —
//! the dispatch transparently re-expands per instruction and re-records.
//! The key is `(BlockId.idx, BlockId.gen)` plus pointer identity of the
//! instruction stream `Arc`, so code-cache generation bumps and engine
//! re-records both invalidate stale memos.

use crate::memsys::MemFootprint;
use crate::pipeline::{pred_idx, Pipeline, REGS};
use crate::stats::BubbleCause;
use darco_host::{BlockId, BranchKind, Component, DynInst};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Pre-state class of one register the block reads or writes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RegClass {
    /// Ready at or before `B + 2`: can never constrain issue and never
    /// bind bubble attribution, so the exact value is irrelevant.
    Stale,
    /// In flight: ready at `B + rel` with the attribution payload.
    Rel { rel: u64, load_miss: bool, producer: Component },
}

/// Pre-state class of one execution-unit slot, in value-sorted order.
#[derive(Debug, Clone, Copy, PartialEq)]
enum UnitPre {
    /// Free at or before `B`: never constrains issue.
    Stale,
    /// Busy until `B + rel`.
    Rel(u64),
}

/// Post-state of one execution-unit slot, per pre-sorted position.
#[derive(Debug, Clone, Copy, PartialEq)]
enum UnitPost {
    /// Still stale: keep whatever (equivalent) stale value is there.
    Keep,
    /// Busy until `B' + rel`.
    Busy(u64),
}

/// Front-end and issue scalars, relative to the time base.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scalars {
    /// Issue-relative fetch-clock position. When the footprint's
    /// [`FetchPre`] is `Lagging`, the precondition accepts any value at
    /// least as far behind and this field is neutralized in the compare.
    fetch_pos: i64,
    fetch_in_cycle: u32,
    issued_in_cycle: u32,
    /// Absolute: line addresses are iteration-invariant.
    last_fetch_line: u64,
    redirect_at: Option<(i64, Component)>,
    last_issue: u64,
    max_completion: u64,
}

/// Precondition class of the decoupled front-end's fetch clock.
///
/// In stall-heavy steady loops the fetch clock falls monotonically
/// further behind the issue clock (it advances one cycle per
/// `issue_width` fetches while stalls advance the issue clock faster),
/// so its exact issue-relative value never repeats — but in precisely
/// that regime it is unobservable: the decode-ready time never binds an
/// issue computation, and the front-end's internal evolution (natural
/// advance, I-cache delays, in-block redirect resyncs to issue-anchored
/// targets) is invariant under shifting the clock further back. This is
/// the fetch-clock analogue of [`RegClass::Stale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchPre {
    /// The fetch clock was observable during the recording (it bound an
    /// issue time, a redirect was pending at entry, or a redirect was
    /// consumed without a resync): the exact issue-relative position in
    /// [`Scalars::fetch_pos`] must match.
    Rel,
    /// Unobservable: accept any fetch clock at least this many cycles
    /// behind the issue clock.
    Lagging(u64),
}

/// How to reconstruct the fetch clock after a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchPost {
    /// A redirect resynced the clock to an issue-anchored target during
    /// the recording: the post value is issue-relative.
    Rel(i64),
    /// No resync: the clock advanced by a gap-independent amount.
    Advance(u64),
}

/// A BTB entry as stored by the predictor: `(tag, target)`.
type BtbEntry = (u64, u64);

/// Branch-predictor footprint for one predictor copy.
#[derive(Debug, Clone)]
struct PredFp {
    copy: usize,
    pre_history: u32,
    post_history: u32,
    /// `(index, pre, post)` PHT counters, first-touch order.
    pht: Vec<(usize, u8, u8)>,
    /// `(index, pre, post)` BTB entries as `(tag, target)` pairs.
    btb: Vec<(usize, BtbEntry, BtbEntry)>,
    branches_delta: u64,
    mispredicts_delta: u64,
}

/// Everything one replay needs: precondition, post-image, deltas.
#[derive(Debug, Clone)]
struct BlockFootprint {
    regs_pre: Vec<(u8, RegClass)>,
    regs_post: Vec<(u8, u64, bool, Component)>,
    units_pre: [[UnitPre; 2]; 3],
    units_post: [[UnitPost; 2]; 3],
    iq_pre: Vec<u64>,
    iq_post: Vec<i64>,
    scal_pre: Scalars,
    scal_post: Scalars,
    fetch_pre: FetchPre,
    fetch_post: FetchPost,
    pred: Vec<PredFp>,
    mem: MemFootprint,
    insts_delta: [u64; 7],
    branches_delta: [u64; 2],
    mispredicts_delta: [u64; 2],
    bubbles: Vec<(Component, BubbleCause, f64)>,
}

/// One memoized block.
#[derive(Debug)]
struct MemoEntry {
    gen: u32,
    /// Identity of the recorded stream: the engine re-records a block
    /// under the same generation by allocating a fresh `Arc`, so pointer
    /// inequality means the footprint no longer describes this stream.
    insts: Arc<[DynInst]>,
    /// Recorded lazily on the *second* sight of a stream — a stream seen
    /// once has not yet proven it will recur, and footprint capture is
    /// the expensive part of the table. `None` while cooling down.
    fp: Option<BlockFootprint>,
    /// Consecutive precondition misses; [`BlockMemo::MISS_BURST`] of
    /// them in a row drops the footprint and starts a cooldown.
    misses: u32,
    /// Remaining consumptions to expand plainly before trying to
    /// record again.
    cooldown: u32,
    /// Length of the last cooldown; doubles every round (capped), so a
    /// block whose timing context settles slowly is retried a
    /// logarithmic number of times while one that never settles costs
    /// an ever-smaller capture fraction. A hit or a fresh stream `Arc`
    /// resets it.
    backoff: u32,
}

/// Replay counters, reported in `BENCH_report.json`'s `block_memo`
/// block (never part of the serialized `Report` — the memo must not be
/// observable there).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoStats {
    /// Replays that passed the precondition and bulk-applied deltas.
    pub hits: u64,
    /// Recording dispatches (first sight or after any miss).
    pub records: u64,
    /// Replays rejected because some touched state changed.
    pub precondition_misses: u64,
    /// Memos dropped for a generation bump or stream re-record.
    pub invalidations: u64,
    /// Per-instruction retires skipped by hits.
    pub insts_replayed: u64,
}

impl MemoStats {
    /// Accumulates another sink's counters (pipelines keep private
    /// memo tables; reports want the fleet total).
    pub fn merge(&mut self, o: &MemoStats) {
        self.hits += o.hits;
        self.records += o.records;
        self.precondition_misses += o.precondition_misses;
        self.invalidations += o.invalidations;
        self.insts_replayed += o.insts_replayed;
    }
}

/// Per-pipeline memo table over `BlockRetire` macro-events.
#[derive(Debug, Default)]
pub struct BlockMemo {
    entries: HashMap<u32, MemoEntry>,
    stats: MemoStats,
}

impl BlockMemo {
    /// An empty memo table.
    pub fn new() -> BlockMemo {
        BlockMemo::default()
    }

    /// Replay counters so far.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Drops the memo for block `idx` (eviction/SMC path; generation
    /// mismatches catch the same transitions lazily).
    pub fn invalidate(&mut self, idx: u32) {
        if self.entries.remove(&idx).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Consecutive precondition misses before the footprint is dropped
    /// and the entry cools down (plain expansion) for a doubling number
    /// of consumptions.
    const MISS_BURST: u32 = 4;
    /// Longest cooldown between record retries.
    const MAX_BACKOFF: u32 = 256;

    /// Consumes one `BlockRetire`: bulk-applies the memo when its
    /// precondition holds, otherwise expands the stream through
    /// [`Pipeline::retire`] (re-recording the footprint when the stream
    /// has proven recurrent). Either way the pipeline ends in exactly
    /// the state the expansion would have produced.
    pub fn replay_or_record(
        &mut self,
        pipe: &mut Pipeline,
        block: BlockId,
        insts: &Arc<[DynInst]>,
    ) {
        match self.entries.get_mut(&block.idx) {
            Some(e) if e.gen == block.gen && Arc::ptr_eq(&e.insts, insts) => {
                if let Some(fp) = &e.fp {
                    if check(pipe, fp) {
                        apply(pipe, fp);
                        e.misses = 0;
                        e.backoff = 0;
                        self.stats.hits += 1;
                        self.stats.insts_replayed += insts.len() as u64;
                        return;
                    }
                    self.stats.precondition_misses += 1;
                    e.misses += 1;
                    if e.misses >= Self::MISS_BURST {
                        // The block's timing context is not repeating
                        // yet (still settling, or never will): stop
                        // paying capture cost for a while.
                        e.fp = None;
                        e.misses = 0;
                        e.backoff = (e.backoff * 2).clamp(Self::MISS_BURST, Self::MAX_BACKOFF);
                        e.cooldown = e.backoff;
                        for d in insts.iter() {
                            pipe.retire(d);
                        }
                        return;
                    }
                } else if e.cooldown > 0 {
                    e.cooldown -= 1;
                    for d in insts.iter() {
                        pipe.retire(d);
                    }
                    return;
                }
                // Second sight of a recurrent stream, a recoverable
                // miss, or a cooldown that ran out: capture the
                // footprint.
                e.fp = Some(record(pipe, insts));
                self.stats.records += 1;
                return;
            }
            Some(_) => self.stats.invalidations += 1,
            None => {}
        }
        // First sight of this stream: expand plainly — capture only
        // once the stream recurs.
        for d in insts.iter() {
            pipe.retire(d);
        }
        self.entries.insert(
            block.idx,
            MemoEntry {
                gen: block.gen,
                insts: Arc::clone(insts),
                fp: None,
                misses: 0,
                cooldown: 0,
                backoff: 0,
            },
        );
    }
}

/// Sorted slot order of a 2-entry unit pool by `(value, index)` — the
/// order `min_by_key` resolves ties in, so position 0 is always the next
/// pick. Positions, not physical slots, are what record and replay have
/// in common: two states agreeing on the sorted class sequence behave
/// identically, and which physical slot holds which (equivalent) value
/// is unobservable.
fn sorted_slots(pool: &[u64; 2]) -> [usize; 2] {
    if pool[1] < pool[0] {
        [1, 0]
    } else {
        [0, 1]
    }
}

fn unit_pools(pipe: &Pipeline) -> [[u64; 2]; 3] {
    [pipe.unit_free_cint, pipe.unit_free_sfp, pipe.unit_free_cfp]
}

fn classify_units(pools: &[[u64; 2]; 3], base: u64) -> [[UnitPre; 2]; 3] {
    let mut out = [[UnitPre::Stale; 2]; 3];
    for (k, pool) in pools.iter().enumerate() {
        for (pos, &slot) in sorted_slots(pool).iter().enumerate() {
            out[k][pos] =
                if pool[slot] <= base { UnitPre::Stale } else { UnitPre::Rel(pool[slot] - base) };
        }
    }
    out
}

fn classify_reg(pipe: &Pipeline, r: usize, base: u64) -> RegClass {
    let ready = pipe.reg_ready[r];
    if ready <= base + 2 {
        RegClass::Stale
    } else {
        RegClass::Rel {
            rel: ready - base,
            load_miss: pipe.reg_load_miss[r],
            producer: pipe.reg_producer[r],
        }
    }
}

fn capture_scalars(pipe: &Pipeline, base: u64) -> Scalars {
    Scalars {
        fetch_pos: pipe.fetch_pos as i64 - base as i64,
        fetch_in_cycle: pipe.fetch_in_cycle,
        issued_in_cycle: pipe.issued_in_cycle,
        last_fetch_line: pipe.last_fetch_line,
        redirect_at: pipe.redirect_at.map(|(at, c)| (at as i64 - base as i64, c)),
        last_issue: pipe.last_issue - base,
        max_completion: pipe.max_completion - base,
    }
}

/// Walks the stream's branches against the predictors *without touching
/// them*, computing which PHT/BTB entries the block will consult. The
/// Gshare index depends on the evolving history, which depends only on
/// the stream's (iteration-invariant) taken flags, so the walk is exact.
/// BTB slots are captured for every branch, taken or not — a superset of
/// what a not-taken conditional touches, which only tightens the
/// precondition (the untouched entry's post equals its pre).
fn pred_prewalk(pipe: &Pipeline, insts: &[DynInst]) -> Vec<PredFp> {
    struct Walk {
        copy: usize,
        h0: u32,
        h: u32,
        pht: Vec<(usize, u8)>,
        btb: Vec<(usize, (u64, u64))>,
        counters: (u64, u64),
    }
    let mut walks: Vec<Walk> = Vec::new();
    for d in insts {
        let Some((kind, _target, taken)) = d.branch else { continue };
        let copy = pred_idx(pipe.cfg.interaction, d.owner());
        let wi = match walks.iter().position(|w| w.copy == copy) {
            Some(i) => i,
            None => {
                let p = &pipe.pred[copy];
                walks.push(Walk {
                    copy,
                    h0: p.history(),
                    h: p.history(),
                    pht: Vec::new(),
                    btb: Vec::new(),
                    counters: p.counter_pair(),
                });
                walks.len() - 1
            }
        };
        let w = &mut walks[wi];
        let p = &pipe.pred[copy];
        if kind == BranchKind::CondDirect {
            let idx = (((d.pc >> 2) as u32 ^ w.h) & p.history_mask()) as usize;
            if !w.pht.iter().any(|&(i, _)| i == idx) {
                w.pht.push((idx, p.pht_entry(idx)));
            }
            w.h = ((w.h << 1) | taken as u32) & p.history_mask();
        }
        let bidx = ((d.pc >> 2) & p.btb_mask()) as usize;
        if !w.btb.iter().any(|&(i, _)| i == bidx) {
            w.btb.push((bidx, p.btb_entry(bidx)));
        }
    }
    walks
        .into_iter()
        .map(|w| PredFp {
            copy: w.copy,
            pre_history: w.h0,
            post_history: w.h0, // filled after the recording run
            pht: w.pht.into_iter().map(|(i, pre)| (i, pre, pre)).collect(),
            btb: w.btb.into_iter().map(|(i, pre)| (i, pre, pre)).collect(),
            branches_delta: w.counters.0, // pre value until finalized
            mispredicts_delta: w.counters.1,
        })
        .collect()
}

/// Recording dispatch: capture the precondition, run the block through
/// the real per-instruction path (so this dispatch is itself
/// bit-identical to plain expansion), then capture the post-image.
fn record(pipe: &mut Pipeline, insts: &Arc<[DynInst]>) -> BlockFootprint {
    let base = pipe.last_issue;

    // Precondition: registers the block references, via the same operand
    // mask walk `retire` uses.
    let mut seen = [false; REGS];
    let mut wseen = [false; REGS];
    let mut regs_pre = Vec::new();
    let mut written = Vec::new();
    for d in insts.iter() {
        let mut ops = d.ops;
        while ops != 0 {
            let slot = ops.trailing_zeros() as usize;
            ops &= ops - 1;
            let r = (if slot < 2 { d.srcs[slot] } else { d.dst }) as usize;
            if !seen[r] {
                seen[r] = true;
                regs_pre.push((r as u8, classify_reg(pipe, r, base)));
            }
            if slot == 2 && !wseen[r] {
                wseen[r] = true;
                written.push(r as u8);
            }
        }
    }

    let pre_pools = unit_pools(pipe);
    let units_pre = classify_units(&pre_pools, base);
    let iq_pre: Vec<u64> = pipe.iq_ring.iter().map(|&e| base - e).collect();
    let scal_pre = capture_scalars(pipe, base);
    let mut pred = pred_prewalk(pipe, insts);

    pipe.mem.begin_record();
    pipe.bubble_log = Some(Vec::new());
    let insts_pre = pipe.stats.insts;
    let branches_pre = pipe.stats.branches;
    let mispredicts_pre = pipe.stats.mispredicts;
    let fetch_pos_pre = pipe.fetch_pos;
    let redirect_pre = pipe.redirect_at;
    let fetch_bound_pre = pipe.fetch_bound;
    let fetch_resync_pre = pipe.fetch_resync;
    let fetch_take_behind_pre = pipe.fetch_take_behind;

    for d in insts.iter() {
        pipe.retire(d);
    }

    // Fetch-clock classification (see `FetchPre`): unobservable during
    // this execution means any at-least-as-large lag replays the same.
    let fetch_pre = if pipe.fetch_bound == fetch_bound_pre
        && pipe.fetch_take_behind == fetch_take_behind_pre
        && redirect_pre.is_none()
        && fetch_pos_pre <= base
    {
        FetchPre::Lagging(base - fetch_pos_pre)
    } else {
        FetchPre::Rel
    };
    let fetch_post = if pipe.fetch_resync > fetch_resync_pre {
        FetchPost::Rel(pipe.fetch_pos as i64 - base as i64)
    } else {
        FetchPost::Advance(pipe.fetch_pos - fetch_pos_pre)
    };

    // Post-image.
    let regs_post = written
        .iter()
        .map(|&r| {
            let i = r as usize;
            (r, pipe.reg_ready[i] - base, pipe.reg_load_miss[i], pipe.reg_producer[i])
        })
        .collect();
    let post_pools = unit_pools(pipe);
    let mut units_post = [[UnitPost::Keep; 2]; 3];
    for k in 0..3 {
        for (pos, &slot) in sorted_slots(&pre_pools[k]).iter().enumerate() {
            let v = post_pools[k][slot];
            units_post[k][pos] = if v > base { UnitPost::Busy(v - base) } else { UnitPost::Keep };
        }
    }
    let iq_post: Vec<i64> = pipe.iq_ring.iter().map(|&e| e as i64 - base as i64).collect();
    let scal_post = capture_scalars(pipe, base);
    for w in &mut pred {
        let p = &pipe.pred[w.copy];
        w.post_history = p.history();
        for (i, _, post) in &mut w.pht {
            *post = p.pht_entry(*i);
        }
        for (i, _, post) in &mut w.btb {
            *post = p.btb_entry(*i);
        }
        let (b, m) = p.counter_pair();
        w.branches_delta = b - w.branches_delta;
        w.mispredicts_delta = m - w.mispredicts_delta;
    }
    let mem = pipe.mem.end_record();
    let bubbles = pipe.bubble_log.take().expect("recording");

    let mut insts_delta = [0u64; 7];
    for (d, (post, pre)) in insts_delta.iter_mut().zip(pipe.stats.insts.iter().zip(&insts_pre)) {
        *d = post - pre;
    }
    let branches_delta =
        [pipe.stats.branches[0] - branches_pre[0], pipe.stats.branches[1] - branches_pre[1]];
    let mispredicts_delta = [
        pipe.stats.mispredicts[0] - mispredicts_pre[0],
        pipe.stats.mispredicts[1] - mispredicts_pre[1],
    ];

    BlockFootprint {
        regs_pre,
        regs_post,
        units_pre,
        units_post,
        iq_pre,
        iq_post,
        scal_pre,
        scal_post,
        fetch_pre,
        fetch_post,
        pred,
        mem,
        insts_delta,
        branches_delta,
        mispredicts_delta,
        bubbles,
    }
}

/// The precondition: is every piece of state the block's timing reads in
/// exactly the recorded (relativized) condition?
fn check(pipe: &Pipeline, fp: &BlockFootprint) -> bool {
    let base = pipe.last_issue;
    let scal_ok = {
        let mut now = capture_scalars(pipe, base);
        if let FetchPre::Lagging(min_gap) = fp.fetch_pre {
            // The fetch clock never bound an issue time during the
            // recording: any lag at least as large replays identically
            // (the front-end evolution is shift-equivariant and its
            // constraint only loosens as the gap grows), so neutralize
            // the exact position before the comparison.
            if pipe.fetch_pos <= base && base - pipe.fetch_pos >= min_gap {
                now.fetch_pos = fp.scal_pre.fetch_pos;
            }
        }
        now == fp.scal_pre
    };
    scal_ok
        && fp.regs_pre.iter().all(|&(r, class)| classify_reg(pipe, r as usize, base) == class)
        && classify_units(&unit_pools(pipe), base) == fp.units_pre
        && pipe.iq_ring.len() == fp.iq_pre.len()
        && pipe.iq_ring.iter().zip(&fp.iq_pre).all(|(&e, &rel)| e <= base && base - e == rel)
        && fp.pred.iter().all(|w| {
            let p = &pipe.pred[w.copy];
            p.history() == w.pre_history
                && w.pht.iter().all(|&(i, pre, _)| p.pht_entry(i) == pre)
                && w.btb.iter().all(|&(i, pre, _)| p.btb_entry(i) == pre)
        })
        && pipe.mem.check_pre(&fp.mem)
}

/// Bulk-applies a verified footprint, leaving the pipeline bitwise
/// identical to what per-instruction expansion would have produced (up
/// to provably unobservable stale values).
fn apply(pipe: &mut Pipeline, fp: &BlockFootprint) {
    let base = pipe.last_issue;

    for &(r, rel, load_miss, producer) in &fp.regs_post {
        let i = r as usize;
        pipe.reg_ready[i] = base + rel;
        pipe.reg_load_miss[i] = load_miss;
        pipe.reg_producer[i] = producer;
    }

    let pools = unit_pools(pipe);
    for (k, pool_pre) in pools.iter().enumerate() {
        let order = sorted_slots(pool_pre);
        let pool = match k {
            0 => &mut pipe.unit_free_cint,
            1 => &mut pipe.unit_free_sfp,
            _ => &mut pipe.unit_free_cfp,
        };
        for (pos, &slot) in order.iter().enumerate() {
            if let UnitPost::Busy(rel) = fp.units_post[k][pos] {
                pool[slot] = base + rel;
            }
        }
    }

    pipe.iq_ring.clear();
    for &rel in &fp.iq_post {
        pipe.iq_ring.push_back((base as i64 + rel) as u64);
    }

    let s = &fp.scal_post;
    pipe.fetch_pos = match fp.fetch_post {
        FetchPost::Rel(rel) => (base as i64 + rel) as u64,
        FetchPost::Advance(adv) => pipe.fetch_pos + adv,
    };
    pipe.fetch_in_cycle = s.fetch_in_cycle;
    pipe.issued_in_cycle = s.issued_in_cycle;
    pipe.last_fetch_line = s.last_fetch_line;
    pipe.redirect_at = s.redirect_at.map(|(rel, c)| ((base as i64 + rel) as u64, c));
    pipe.max_completion = base + s.max_completion;
    pipe.last_issue = base + s.last_issue;

    for (d, delta) in pipe.stats.insts.iter_mut().zip(&fp.insts_delta) {
        *d += delta;
    }
    for i in 0..2 {
        pipe.stats.branches[i] += fp.branches_delta[i];
        pipe.stats.mispredicts[i] += fp.mispredicts_delta[i];
    }
    for &(comp, cause, cycles) in &fp.bubbles {
        pipe.stats.add_bubble(comp, cause, cycles);
    }

    for w in &fp.pred {
        let p = &mut pipe.pred[w.copy];
        p.set_history(w.post_history);
        for &(i, _, post) in &w.pht {
            p.set_pht_entry(i, post);
        }
        for &(i, _, (tag, target)) in &w.btb {
            p.set_btb_entry(i, tag, target);
        }
        p.add_counter_deltas(w.branches_delta, w.mispredicts_delta);
    }

    pipe.mem.apply(&fp.mem);
}
