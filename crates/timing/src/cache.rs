//! Set-associative cache with tree-PLRU replacement.
//!
//! One structure serves the L1-I, L1-D and unified L2 of Table I; the
//! TLBs reuse it at page granularity via [`crate::tlb`].

use crate::config::CacheParams;
use crate::plru::PlruSet;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (victim possibly evicted).
    Miss,
}

#[derive(Debug, Clone)]
struct Set {
    tags: Vec<u64>,
    valid: Vec<bool>,
    plru: PlruSet,
}

/// A set-associative, write-allocate cache model (tags only — data lives
/// in the functional memory).
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Set>,
    set_mask: u64,
    block_shift: u32,
    ways: u32,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from its parameters.
    ///
    /// # Panics
    ///
    /// Panics if block size, way count or set count is not a power of two.
    pub fn new(p: CacheParams) -> Cache {
        let sets = p.sets();
        assert!(p.block.is_power_of_two(), "block size must be a power of two");
        assert!(p.ways.is_power_of_two(), "ways must be a power of two");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: (0..sets)
                .map(|_| Set {
                    tags: vec![0; p.ways as usize],
                    valid: vec![false; p.ways as usize],
                    plru: PlruSet::default(),
                })
                .collect(),
            set_mask: (sets - 1) as u64,
            block_shift: p.block.trailing_zeros(),
            ways: p.ways,
            accesses: 0,
            misses: 0,
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.block_shift;
        ((line & self.set_mask) as usize, line >> self.set_mask.count_ones())
    }

    /// Accesses `addr`, filling the line on a miss. Counted in the
    /// hit/miss statistics.
    pub fn access(&mut self, addr: u64) -> Lookup {
        self.accesses += 1;
        let r = self.probe_fill(addr);
        if r == Lookup::Miss {
            self.misses += 1;
        }
        r
    }

    /// Fills `addr` without counting statistics (used by the prefetcher,
    /// whose fills are not demand accesses).
    pub fn fill(&mut self, addr: u64) {
        let _ = self.probe_fill(addr);
    }

    /// Checks for presence without filling or counting.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        let set = &self.sets[set_idx];
        (0..self.ways as usize).any(|w| set.valid[w] && set.tags[w] == tag)
    }

    fn probe_fill(&mut self, addr: u64) -> Lookup {
        let (set_idx, tag) = self.index(addr);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        for w in 0..ways as usize {
            if set.valid[w] && set.tags[w] == tag {
                set.plru.touch(w as u32, ways);
                return Lookup::Hit;
            }
        }
        // Prefer an invalid way, else the PLRU victim.
        let victim = (0..ways as usize)
            .find(|&w| !set.valid[w])
            .unwrap_or_else(|| set.plru.victim(ways) as usize);
        set.tags[victim] = tag;
        set.valid[victim] = true;
        set.plru.touch(victim as u32, ways);
        Lookup::Miss
    }

    /// Demand accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over demand accesses (0 if never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Line (block) size in bytes.
    pub fn block_bytes(&self) -> u64 {
        1 << self.block_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 16B blocks = 128 B.
        Cache::new(CacheParams { size: 128, block: 16, ways: 2, hit_latency: 1 })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert_eq!(c.access(0x40), Lookup::Miss);
        assert_eq!(c.access(0x40), Lookup::Hit);
        assert_eq!(c.access(0x4F), Lookup::Hit, "same 16B line");
        assert_eq!(c.access(0x50), Lookup::Miss, "next line");
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_on_conflict() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets*block = 64).
        assert_eq!(c.access(0x000), Lookup::Miss);
        assert_eq!(c.access(0x040), Lookup::Miss);
        assert_eq!(c.access(0x080), Lookup::Miss); // evicts one of the two
                                                   // The most recently used (0x040) must survive.
        assert!(c.contains(0x040));
        assert!(!c.contains(0x000));
    }

    #[test]
    fn prefetch_fill_not_counted() {
        let mut c = small();
        c.fill(0x100);
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.access(0x100), Lookup::Hit);
    }

    #[test]
    fn distinct_tags_same_set() {
        let mut c = small();
        c.access(0x000);
        assert!(c.contains(0x000));
        assert!(!c.contains(0x040), "different tag, same set");
    }

    #[test]
    fn table_i_shapes_construct() {
        use crate::config::TimingConfig;
        let cfg = TimingConfig::default();
        let _ = Cache::new(cfg.l1i);
        let _ = Cache::new(cfg.l1d);
        let _ = Cache::new(cfg.l2);
    }
}
