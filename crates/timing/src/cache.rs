//! Set-associative cache with tree-PLRU replacement.
//!
//! One structure serves the L1-I, L1-D and unified L2 of Table I; the
//! TLBs reuse it at page granularity via [`crate::tlb`].
//!
//! Two tag layouts are supported, selected at construction and
//! bit-exact to each other (same hits, same victims, same counters):
//!
//! * **Flat** (shipping, [`Cache::new`]): one contiguous set-major
//!   entry array for the whole cache, each entry `(tag << 1) | 1` with
//!   `0` meaning invalid — a probe touches a single short run of one
//!   allocation, and the common 2/4/8-way shapes get monomorphized
//!   probe loops with the associativity known at compile time.
//! * **Legacy** ([`Cache::legacy`]): the original per-set `Vec<u64>`
//!   tags + `Vec<bool>` valid layout (two heap allocations and three
//!   pointer hops per probe), kept reachable as the equivalence oracle
//!   behind `TimingConfig::flat_mem = false`.
//!
//! Presence checks and demand probes share one way-scan helper
//! (`find_way`) in the flat layout, so `contains` and `probe_fill`
//! cannot drift apart.

use crate::config::CacheParams;
use crate::plru::PlruSet;

/// One set's replacement-relevant state, captured in the normalized
/// flat key encoding regardless of the underlying layout. The
/// block-memo footprint stores these per touched set: equality means
/// the set will respond to the block's probes exactly as recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SetState {
    /// `(tag << 1) | 1` per valid way, `0` per invalid way.
    pub(crate) keys: Vec<u64>,
    /// Tree-PLRU bits.
    pub(crate) plru: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (victim possibly evicted).
    Miss,
}

/// One set of the legacy (array-of-structs) layout.
#[derive(Debug, Clone)]
struct Set {
    tags: Vec<u64>,
    valid: Vec<bool>,
    plru: PlruSet,
}

/// Tag storage, in either layout.
#[derive(Debug, Clone)]
enum Store {
    /// Set-major interleaved entries (`sets * ways` of them) with the
    /// validity bit folded into bit 0; per-set PLRU state alongside.
    Flat { entries: Box<[u64]>, plru: Box<[PlruSet]> },
    /// The original per-set layout, kept as a bit-exact oracle.
    Legacy { sets: Vec<Set> },
}

/// A set-associative, write-allocate cache model (tags only — data lives
/// in the functional memory).
#[derive(Debug, Clone)]
pub struct Cache {
    store: Store,
    set_mask: u64,
    block_shift: u32,
    tag_shift: u32,
    ways: u32,
    accesses: u64,
    misses: u64,
}

/// Position of `key` in a set's entry run, if present. The single probe
/// helper shared by presence checks and demand probes (an invalid way is
/// found the same way, with `key = 0`).
#[inline(always)]
fn find_way(set: &[u64], key: u64) -> Option<usize> {
    set.iter().position(|&e| e == key)
}

/// Probe-and-fill over one flat set with compile-time associativity:
/// the slice length is pinned to `W`, so the scan unrolls.
#[inline(always)]
fn probe_set<const W: usize>(set: &mut [u64], plru: &mut PlruSet, key: u64) -> Lookup {
    let set: &mut [u64; W] = set.try_into().expect("set run matches associativity");
    probe_set_any(set, plru, key, W as u32)
}

/// Probe-and-fill over one flat set, associativity known at runtime.
#[inline(always)]
fn probe_set_any(set: &mut [u64], plru: &mut PlruSet, key: u64, ways: u32) -> Lookup {
    if let Some(w) = find_way(set, key) {
        plru.touch(w as u32, ways);
        return Lookup::Hit;
    }
    // Prefer an invalid way (entry 0), else the PLRU victim — the same
    // policy, in the same order, as the legacy layout.
    let victim = find_way(set, 0).unwrap_or_else(|| plru.victim(ways) as usize);
    set[victim] = key;
    plru.touch(victim as u32, ways);
    Lookup::Miss
}

impl Cache {
    /// Builds a cache from its parameters, in the flat layout.
    ///
    /// # Panics
    ///
    /// Panics if block size, way count or set count is not a power of
    /// two, or the block is smaller than 2 bytes (the flat encoding
    /// needs one spare tag bit).
    pub fn new(p: CacheParams) -> Cache {
        Cache::with_layout(p, true)
    }

    /// Builds a cache in the legacy per-set layout (the oracle).
    pub fn legacy(p: CacheParams) -> Cache {
        Cache::with_layout(p, false)
    }

    /// Builds a cache in the requested layout (`flat = true` for the
    /// shipping flat layout).
    pub fn with_layout(p: CacheParams, flat: bool) -> Cache {
        let sets = p.sets();
        assert!(p.block.is_power_of_two(), "block size must be a power of two");
        assert!(p.block >= 2, "flat tag encoding needs block >= 2 bytes");
        assert!(p.ways.is_power_of_two(), "ways must be a power of two");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let store = if flat {
            Store::Flat {
                entries: vec![0u64; (sets * p.ways) as usize].into_boxed_slice(),
                plru: vec![PlruSet::default(); sets as usize].into_boxed_slice(),
            }
        } else {
            Store::Legacy {
                sets: (0..sets)
                    .map(|_| Set {
                        tags: vec![0; p.ways as usize],
                        valid: vec![false; p.ways as usize],
                        plru: PlruSet::default(),
                    })
                    .collect(),
            }
        };
        Cache {
            store,
            set_mask: (sets - 1) as u64,
            block_shift: p.block.trailing_zeros(),
            tag_shift: (sets - 1).count_ones(),
            ways: p.ways,
            accesses: 0,
            misses: 0,
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.block_shift;
        ((line & self.set_mask) as usize, line >> self.tag_shift)
    }

    /// Accesses `addr`, filling the line on a miss. Counted in the
    /// hit/miss statistics.
    pub fn access(&mut self, addr: u64) -> Lookup {
        self.accesses += 1;
        let r = self.probe_fill(addr);
        if r == Lookup::Miss {
            self.misses += 1;
        }
        r
    }

    /// Fills `addr` without counting statistics (used by the prefetcher,
    /// whose fills are not demand accesses).
    pub fn fill(&mut self, addr: u64) {
        let _ = self.probe_fill(addr);
    }

    /// Checks for presence without filling or counting.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        match &self.store {
            Store::Flat { entries, .. } => {
                let ways = self.ways as usize;
                find_way(&entries[set_idx * ways..(set_idx + 1) * ways], (tag << 1) | 1).is_some()
            }
            Store::Legacy { sets } => {
                let set = &sets[set_idx];
                (0..self.ways as usize).any(|w| set.valid[w] && set.tags[w] == tag)
            }
        }
    }

    /// Records a demand access known to hit, without probing (the
    /// last-line shortcuts prove the hit from the access history; the
    /// PLRU touch is elided because re-touching the MRU way is a
    /// no-op). Keeps the counters identical to a probed hit.
    #[inline]
    pub(crate) fn count_hit(&mut self) {
        self.accesses += 1;
    }

    fn probe_fill(&mut self, addr: u64) -> Lookup {
        let (set_idx, tag) = self.index(addr);
        let ways = self.ways;
        match &mut self.store {
            Store::Flat { entries, plru } => {
                let base = set_idx * ways as usize;
                let set = &mut entries[base..base + ways as usize];
                let plru = &mut plru[set_idx];
                let key = (tag << 1) | 1;
                match ways {
                    2 => probe_set::<2>(set, plru, key),
                    4 => probe_set::<4>(set, plru, key),
                    8 => probe_set::<8>(set, plru, key),
                    _ => probe_set_any(set, plru, key, ways),
                }
            }
            Store::Legacy { sets } => {
                let set = &mut sets[set_idx];
                for w in 0..ways as usize {
                    if set.valid[w] && set.tags[w] == tag {
                        set.plru.touch(w as u32, ways);
                        return Lookup::Hit;
                    }
                }
                // Prefer an invalid way, else the PLRU victim.
                let victim = (0..ways as usize)
                    .find(|&w| !set.valid[w])
                    .unwrap_or_else(|| set.plru.victim(ways) as usize);
                set.tags[victim] = tag;
                set.valid[victim] = true;
                set.plru.touch(victim as u32, ways);
                Lookup::Miss
            }
        }
    }

    /// Set index `addr` maps to (for the block-memo footprint).
    pub(crate) fn set_of(&self, addr: u64) -> usize {
        self.index(addr).0
    }

    /// Captures one set's replacement-relevant state in the normalized
    /// flat encoding (`(tag << 1) | 1` per valid way, `0` per invalid
    /// way, plus the PLRU tree bits). Identical for both layouts, so a
    /// footprint recorded under one layout checks out under the other.
    pub(crate) fn capture_set(&self, set_idx: usize) -> SetState {
        let ways = self.ways as usize;
        match &self.store {
            Store::Flat { entries, plru } => SetState {
                keys: entries[set_idx * ways..(set_idx + 1) * ways].to_vec(),
                plru: plru[set_idx].bits(),
            },
            Store::Legacy { sets } => {
                let set = &sets[set_idx];
                SetState {
                    keys: (0..ways)
                        .map(|w| if set.valid[w] { (set.tags[w] << 1) | 1 } else { 0 })
                        .collect(),
                    plru: set.plru.bits(),
                }
            }
        }
    }

    /// Restores one set's state from a normalized capture.
    pub(crate) fn restore_set(&mut self, set_idx: usize, s: &SetState) {
        let ways = self.ways as usize;
        debug_assert_eq!(s.keys.len(), ways);
        match &mut self.store {
            Store::Flat { entries, plru } => {
                entries[set_idx * ways..(set_idx + 1) * ways].copy_from_slice(&s.keys);
                plru[set_idx].set_bits(s.plru);
            }
            Store::Legacy { sets } => {
                let set = &mut sets[set_idx];
                for w in 0..ways {
                    set.valid[w] = s.keys[w] & 1 != 0;
                    set.tags[w] = s.keys[w] >> 1;
                }
                set.plru.set_bits(s.plru);
            }
        }
    }

    /// Access/miss counters as a pair (for block-memo counter deltas).
    pub(crate) fn counter_pair(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }

    /// Bulk-advances the counters by recorded deltas.
    pub(crate) fn add_counter_deltas(&mut self, accesses: u64, misses: u64) {
        self.accesses += accesses;
        self.misses += misses;
    }

    /// Demand accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over demand accesses (0 if never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Line (block) size in bytes.
    pub fn block_bytes(&self) -> u64 {
        1 << self.block_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 16B blocks = 128 B.
        Cache::new(CacheParams { size: 128, block: 16, ways: 2, hit_latency: 1 })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert_eq!(c.access(0x40), Lookup::Miss);
        assert_eq!(c.access(0x40), Lookup::Hit);
        assert_eq!(c.access(0x4F), Lookup::Hit, "same 16B line");
        assert_eq!(c.access(0x50), Lookup::Miss, "next line");
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_on_conflict() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets*block = 64).
        assert_eq!(c.access(0x000), Lookup::Miss);
        assert_eq!(c.access(0x040), Lookup::Miss);
        assert_eq!(c.access(0x080), Lookup::Miss); // evicts one of the two
                                                   // The most recently used (0x040) must survive.
        assert!(c.contains(0x040));
        assert!(!c.contains(0x000));
    }

    #[test]
    fn prefetch_fill_not_counted() {
        let mut c = small();
        c.fill(0x100);
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.access(0x100), Lookup::Hit);
    }

    #[test]
    fn distinct_tags_same_set() {
        let mut c = small();
        c.access(0x000);
        assert!(c.contains(0x000));
        assert!(!c.contains(0x040), "different tag, same set");
    }

    #[test]
    fn table_i_shapes_construct() {
        use crate::config::TimingConfig;
        let cfg = TimingConfig::default();
        let _ = Cache::new(cfg.l1i);
        let _ = Cache::new(cfg.l1d);
        let _ = Cache::new(cfg.l2);
        let _ = Cache::legacy(cfg.l2);
    }

    #[test]
    fn count_hit_matches_probed_hit_counters() {
        let mut probed = small();
        let mut shortcut = small();
        probed.access(0x40);
        shortcut.access(0x40);
        probed.access(0x40); // probed repeat hit
        shortcut.count_hit(); // shortcut repeat hit
        assert_eq!(probed.accesses(), shortcut.accesses());
        assert_eq!(probed.misses(), shortcut.misses());
    }

    #[test]
    fn flat_and_legacy_layouts_are_bit_exact() {
        // Random-ish address streams over several shapes, including the
        // odd 1-way case: every lookup outcome, presence answer and
        // counter must match between the two layouts.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for &(size, block, ways) in
            &[(128u32, 16u32, 2u32), (1024, 32, 4), (4096, 64, 8), (256, 16, 1)]
        {
            let p = CacheParams { size, block, ways, hit_latency: 1 };
            let mut flat = Cache::new(p);
            let mut legacy = Cache::legacy(p);
            for i in 0..4000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = x % (8 * size as u64); // 8x capacity: plenty of evictions
                match i % 5 {
                    4 => {
                        flat.fill(addr);
                        legacy.fill(addr);
                    }
                    _ => assert_eq!(flat.access(addr), legacy.access(addr), "access {i}"),
                }
                assert_eq!(flat.contains(addr), legacy.contains(addr));
                assert_eq!(
                    flat.contains(addr ^ (size as u64)),
                    legacy.contains(addr ^ (size as u64))
                );
            }
            assert_eq!(flat.accesses(), legacy.accesses());
            assert_eq!(flat.misses(), legacy.misses());
        }
    }
}
