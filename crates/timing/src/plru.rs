//! Tree-based pseudo-LRU replacement state.
//!
//! All cache-like structures in Table I use PLRU. For a power-of-two
//! associativity `w`, the state is a binary tree of `w - 1` bits; a hit
//! flips the path bits away from the accessed way, and the victim is
//! found by following the bits.

/// PLRU state for one set (supports up to 64 ways).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlruSet {
    bits: u64,
}

impl PlruSet {
    /// Marks `way` as most recently used among `ways` ways.
    ///
    /// # Panics
    ///
    /// Debug-panics if `ways` is not a power of two or `way >= ways`.
    pub fn touch(&mut self, way: u32, ways: u32) {
        debug_assert!(ways.is_power_of_two() && way < ways);
        let mut node = 0u32; // root at index 0; children of n are 2n+1, 2n+2
        let mut lo = 0u32;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Accessed left subtree: point the bit right (away).
                self.bits |= 1 << node;
                node = 2 * node + 1;
                hi = mid;
            } else {
                self.bits &= !(1 << node);
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    /// Raw tree bits, for state capture by the block-memo recorder.
    pub(crate) fn bits(&self) -> u64 {
        self.bits
    }

    /// Restores raw tree bits captured by [`PlruSet::bits`].
    pub(crate) fn set_bits(&mut self, bits: u64) {
        self.bits = bits;
    }

    /// Returns the victim way among `ways` ways (the pseudo-least
    /// recently used one). Does not modify state.
    pub fn victim(&self, ways: u32) -> u32 {
        debug_assert!(ways.is_power_of_two());
        let mut node = 0u32;
        let mut lo = 0u32;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits & (1 << node) != 0 {
                // Bit points right: victim is on the right.
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_avoids_recent_touches() {
        let ways = 4;
        let mut p = PlruSet::default();
        // Touching every way in order leaves way 0 as the tree-PLRU
        // victim (root and left bits both point left).
        for w in 0..ways {
            p.touch(w, ways);
        }
        assert_eq!(p.victim(ways), 0);
        p.touch(0, ways);
        // The victim is never the way just touched.
        assert_ne!(p.victim(ways), 0);
    }

    #[test]
    fn single_way_degenerates() {
        let p = PlruSet::default();
        assert_eq!(p.victim(1), 0);
    }

    #[test]
    fn eight_way_full_rotation() {
        let ways = 8;
        let mut p = PlruSet::default();
        // Touch every way in order: the tree victim is way 0 again.
        for w in 0..ways {
            p.touch(w, ways);
        }
        assert_eq!(p.victim(ways), 0);
        // Repeatedly touching the current victim always moves it: a
        // filled set cycles through all ways without repeats-in-a-row.
        for _ in 0..32 {
            let v = p.victim(ways);
            p.touch(v, ways);
            assert_ne!(p.victim(ways), v);
        }
    }

    #[test]
    fn victim_is_stable_without_touches() {
        let p = PlruSet::default();
        assert_eq!(p.victim(8), p.victim(8));
    }
}
