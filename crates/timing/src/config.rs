//! Host processor configuration (the paper's Table I).

use serde::{Deserialize, Serialize};

/// Parameters of one set-associative cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size: u32,
    /// Block (line) size in bytes; must be a power of two.
    pub block: u32,
    /// Associativity; must be a power of two for tree PLRU.
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheParams {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size / (self.block * self.ways)
    }
}

/// Parameters of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbParams {
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

/// Whether the software layer and the application share
/// microarchitectural state (caches, TLB, predictor, prefetcher).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Interaction {
    /// One set of structures, contended by both entities — the machine's
    /// real behavior and the paper's "w/" configuration.
    #[default]
    Shared,
    /// Private structures per entity — the counterfactual "w/o"
    /// configuration of Fig. 10 used to quantify interaction.
    Isolated,
}

/// Full host configuration; [`TimingConfig::default`] reproduces Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Issue width (2 symmetric pipes in the paper).
    pub issue_width: u32,
    /// Instruction queue capacity.
    pub iq_size: u32,
    /// Gshare history register bits.
    pub bp_history_bits: u32,
    /// Branch target buffer entries (direct-mapped; the paper does not
    /// size it, 1024 chosen and documented in DESIGN.md).
    pub btb_entries: u32,
    /// Branch misprediction penalty in cycles (detected in EXE).
    pub mispredict_penalty: u32,
    /// Front-end depth in cycles (AC, IF, DEC).
    pub frontend_depth: u32,
    /// L1 instruction cache.
    pub l1i: CacheParams,
    /// L1 data cache.
    pub l1d: CacheParams,
    /// Unified L2 cache.
    pub l2: CacheParams,
    /// Main memory access latency in cycles.
    pub mem_latency: u32,
    /// L1 data TLB.
    pub tlb1: TlbParams,
    /// L2 data TLB.
    pub tlb2: TlbParams,
    /// Page-walk latency charged on a full TLB miss (not in Table I;
    /// equals main-memory latency, see DESIGN.md).
    pub tlb_walk_latency: u32,
    /// Stride prefetcher table entries (0 disables prefetching).
    pub prefetcher_entries: u32,
    /// Simple integer operation latency.
    pub lat_simple_int: u32,
    /// Complex integer (mul/div/flags) latency.
    pub lat_complex_int: u32,
    /// Simple FP (add/sub/mov/convert) latency.
    pub lat_simple_fp: u32,
    /// Complex FP (mul/div) latency.
    pub lat_complex_fp: u32,
    /// Resource sharing between TOL and the application.
    pub interaction: Interaction,
    /// Use the flattened (struct-of-arrays) cache/TLB tag layout: one
    /// contiguous entry array per structure with the validity bit folded
    /// into the tag word, plus monomorphized probe loops for the common
    /// associativities. `false` keeps the original per-set
    /// `Vec<u64>`+`Vec<bool>` layout as a bit-exact oracle (same PLRU,
    /// same victims, same counters) — simulator-speed only.
    pub flat_mem: bool,
    /// Enable the last-line/last-page hit shortcuts in
    /// [`MemSystem`](crate::MemSystem) and [`Tlb`](crate::Tlb): a demand
    /// access to the same L1-D line (or TLB page) as the immediately
    /// preceding one skips the tag probes, exploiting PLRU touch
    /// idempotence. `false` keeps the full-probe oracle. Bit-exact
    /// either way — simulator-speed only.
    pub mem_shortcuts: bool,
    /// Enable block timing memoization over `BlockRetire` macro-events:
    /// steady-state translated blocks record a relativized timing
    /// footprint once and later dispatches bulk-apply it after a
    /// precondition check (see [`BlockMemo`](crate::BlockMemo) and
    /// DESIGN.md §16). `false` expands every macro-event through the
    /// per-instruction oracle. Bit-exact either way — simulator-speed
    /// only.
    #[serde(default = "default_block_memo")]
    pub block_memo: bool,
}

/// Serde default for [`TimingConfig::block_memo`] (profiles written
/// before the memo existed deserialize with it enabled).
#[allow(dead_code)] // consumed via the serde attribute with real serde
fn default_block_memo() -> bool {
    true
}

impl Default for TimingConfig {
    fn default() -> TimingConfig {
        TimingConfig {
            issue_width: 2,
            iq_size: 16,
            bp_history_bits: 12,
            btb_entries: 1024,
            mispredict_penalty: 6,
            frontend_depth: 3,
            l1i: CacheParams { size: 32 * 1024, block: 64, ways: 4, hit_latency: 1 },
            l1d: CacheParams { size: 32 * 1024, block: 64, ways: 4, hit_latency: 1 },
            l2: CacheParams { size: 512 * 1024, block: 128, ways: 8, hit_latency: 16 },
            mem_latency: 128,
            tlb1: TlbParams { entries: 64, ways: 8, hit_latency: 1 },
            tlb2: TlbParams { entries: 256, ways: 8, hit_latency: 16 },
            tlb_walk_latency: 128,
            prefetcher_entries: 256,
            lat_simple_int: 1,
            lat_complex_int: 2,
            lat_simple_fp: 2,
            lat_complex_fp: 5,
            interaction: Interaction::Shared,
            flat_mem: true,
            mem_shortcuts: true,
            block_memo: true,
        }
    }
}

impl TimingConfig {
    /// Table I configuration with isolated (non-interacting) resources.
    pub fn isolated() -> TimingConfig {
        TimingConfig { interaction: Interaction::Isolated, ..TimingConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_defaults() {
        let c = TimingConfig::default();
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.iq_size, 16);
        assert_eq!(c.l1d.sets(), 128); // 32K / (64 * 4)
        assert_eq!(c.l2.sets(), 512); // 512K / (128 * 8)
        assert_eq!(c.mispredict_penalty, 6);
        assert_eq!(c.mem_latency, 128);
        assert_eq!(c.tlb1.entries, 64);
        assert_eq!(c.interaction, Interaction::Shared);
    }

    #[test]
    fn isolated_flips_only_interaction() {
        let c = TimingConfig::isolated();
        assert_eq!(c.interaction, Interaction::Isolated);
        assert_eq!(c.l1d, TimingConfig::default().l1d);
    }

    #[test]
    fn fast_paths_default_on() {
        let c = TimingConfig::default();
        assert!(c.flat_mem, "flat layout is the shipping default");
        assert!(c.mem_shortcuts, "hit shortcuts are the shipping default");
        assert!(c.block_memo, "block memoization is the shipping default");
    }
}
