//! Stride prefetcher.
//!
//! The back-end is equipped with a 256-entry stride prefetcher (Table I):
//! a table indexed by load PC tracking the last address and stride; after
//! two consecutive accesses with the same stride, the next line is
//! prefetched into the L1 data cache.

/// One prefetch-table entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Entry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// PC-indexed stride predictor; emits prefetch addresses.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    mask: u64,
    issued: u64,
}

impl StridePrefetcher {
    /// Builds a prefetcher with `entries` slots (power of two; 0 yields
    /// an inert prefetcher).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is neither zero nor a power of two.
    pub fn new(entries: u32) -> StridePrefetcher {
        assert!(entries == 0 || entries.is_power_of_two());
        StridePrefetcher {
            table: vec![Entry::default(); entries as usize],
            mask: entries.wrapping_sub(1) as u64,
            issued: 0,
        }
    }

    /// Observes a demand data access; returns an address to prefetch, if
    /// a stable stride is established.
    pub fn observe(&mut self, pc: u64, addr: u64) -> Option<u64> {
        if self.table.is_empty() {
            return None;
        }
        let idx = ((pc >> 2) & self.mask) as usize;
        let e = &mut self.table[idx];
        if !e.valid || e.pc != pc {
            *e = Entry { pc, last_addr: addr, stride: 0, confidence: 0, valid: true };
            return None;
        }
        let stride = addr.wrapping_sub(e.last_addr) as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence >= 2 {
            self.issued += 1;
            Some(addr.wrapping_add(e.stride as u64))
        } else {
            None
        }
    }

    /// Prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Table slot `pc` maps to plus its current contents, for the
    /// block-memo footprint (`None` when prefetching is disabled).
    pub(crate) fn entry_at(&self, pc: u64) -> Option<(usize, Entry)> {
        if self.table.is_empty() {
            return None;
        }
        let idx = ((pc >> 2) & self.mask) as usize;
        Some((idx, self.table[idx]))
    }

    /// Restores one table slot from a capture.
    pub(crate) fn set_entry(&mut self, idx: usize, e: Entry) {
        self.table[idx] = e;
    }

    /// Bulk-advances the issued counter by a recorded delta.
    pub(crate) fn add_issued(&mut self, n: u64) {
        self.issued += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_trigger_prefetch() {
        let mut p = StridePrefetcher::new(256);
        let pc = 0x1000;
        assert_eq!(p.observe(pc, 0x100), None); // learn addr
        assert_eq!(p.observe(pc, 0x140), None); // learn stride
        assert_eq!(p.observe(pc, 0x180), None); // confidence 1
        assert_eq!(p.observe(pc, 0x1C0), Some(0x200)); // confident
        assert_eq!(p.observe(pc, 0x200), Some(0x240));
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn irregular_accesses_stay_quiet() {
        let mut p = StridePrefetcher::new(256);
        let pc = 0x2000;
        for a in [0x10u64, 0x90, 0x30, 0x200, 0x18] {
            assert_eq!(p.observe(pc, a), None);
        }
    }

    #[test]
    fn pc_conflicts_reset_entries() {
        let mut p = StridePrefetcher::new(1); // everything collides
        p.observe(0x1000, 0x100);
        p.observe(0x1000, 0x140);
        // Different pc steals the entry.
        assert_eq!(p.observe(0x2004, 0x500), None);
        // Original pc must relearn from scratch.
        assert_eq!(p.observe(0x1000, 0x180), None);
        assert_eq!(p.observe(0x1000, 0x1C0), None);
    }

    #[test]
    fn disabled_prefetcher_is_inert() {
        let mut p = StridePrefetcher::new(0);
        for i in 0..10u64 {
            assert_eq!(p.observe(0x100, i * 64), None);
        }
        assert_eq!(p.issued(), 0);
    }
}
