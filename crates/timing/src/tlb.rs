//! Two-level data TLB.
//!
//! The modeled host has a TLB only for data: the software layer works
//! with physical addresses, so instruction fetch needs no translation
//! (paper Sec. II-A-2). Pages are 4 KiB. A miss in both levels charges
//! the page-walk latency.
//!
//! Consecutive accesses to the same page are extremely common (any walk
//! over a data structure, any run of stack traffic), and after *any*
//! access the page is resident and most-recently-used in L1 — a repeat
//! access must hit, and re-touching the MRU way of a tree PLRU is a
//! no-op. The last-page shortcut exploits this to skip the tag probe
//! entirely while keeping counters identical to the probed path; it is
//! gated by `TimingConfig::mem_shortcuts` so the full-probe path stays
//! available as an oracle.

use crate::cache::{Cache, Lookup};
use crate::config::{CacheParams, TlbParams};

const PAGE_SHIFT: u32 = 12;

/// Sentinel for "no previous page": real page numbers are at most
/// 2^52 - 1 (addresses are 64-bit, pages 4 KiB).
const NO_PAGE: u64 = u64::MAX;

/// Latency outcome of a TLB access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the first level.
    L1Hit,
    /// Miss in L1, hit in L2.
    L2Hit,
    /// Missed both levels; a page walk was performed.
    Walk,
}

/// Two-level data TLB (Table I: 64-entry/8-way L1, 256-entry/8-way L2,
/// both PLRU).
#[derive(Debug, Clone)]
pub struct Tlb {
    l1: Cache,
    l2: Cache,
    l1_latency: u32,
    l2_latency: u32,
    walk_latency: u32,
    /// Page number of the previous access ([`NO_PAGE`] if none), or
    /// [`NO_PAGE`] permanently when shortcuts are disabled.
    last_page: u64,
    shortcuts: bool,
}

impl Tlb {
    /// Builds the TLB from the two level parameters and walk latency,
    /// with the shipping fast paths (flat layout, last-page shortcut).
    pub fn new(l1: TlbParams, l2: TlbParams, walk_latency: u32) -> Tlb {
        Tlb::configured(l1, l2, walk_latency, true, true)
    }

    /// Builds the TLB with explicit fast-path switches (`flat` selects
    /// the cache tag layout, `shortcuts` the last-page hit shortcut).
    /// All combinations are bit-exact.
    pub fn configured(
        l1: TlbParams,
        l2: TlbParams,
        walk_latency: u32,
        flat: bool,
        shortcuts: bool,
    ) -> Tlb {
        // Reuse the cache structure at page granularity: "block" = page.
        let mk = |p: TlbParams| {
            Cache::with_layout(
                CacheParams {
                    size: p.entries * (1 << PAGE_SHIFT), // entries * page size
                    block: 1 << PAGE_SHIFT,
                    ways: p.ways,
                    hit_latency: p.hit_latency,
                },
                flat,
            )
        };
        Tlb {
            l1: mk(l1),
            l2: mk(l2),
            l1_latency: l1.hit_latency,
            l2_latency: l2.hit_latency,
            walk_latency,
            last_page: NO_PAGE,
            shortcuts,
        }
    }

    /// Translates the page of `addr`, updating both levels.
    #[inline]
    pub fn access(&mut self, addr: u64) -> (TlbOutcome, u32) {
        let page = addr >> PAGE_SHIFT;
        if self.shortcuts && page == self.last_page {
            // The previous access left this page resident and MRU in L1:
            // a probe would hit and its PLRU touch would be a no-op.
            self.l1.count_hit();
            return (TlbOutcome::L1Hit, self.l1_latency);
        }
        if self.shortcuts {
            self.last_page = page;
        }
        if self.l1.access(addr) == Lookup::Hit {
            return (TlbOutcome::L1Hit, self.l1_latency);
        }
        if self.l2.access(addr) == Lookup::Hit {
            return (TlbOutcome::L2Hit, self.l2_latency);
        }
        (TlbOutcome::Walk, self.walk_latency)
    }

    /// The two level caches, for block-memo set capture (`0` = L1).
    pub(crate) fn level(&self, l: usize) -> &Cache {
        if l == 0 {
            &self.l1
        } else {
            &self.l2
        }
    }

    /// Mutable access to a level cache, for block-memo restore.
    pub(crate) fn level_mut(&mut self, l: usize) -> &mut Cache {
        if l == 0 {
            &mut self.l1
        } else {
            &mut self.l2
        }
    }

    /// Page number of the last access (shortcut state).
    pub(crate) fn last_page(&self) -> u64 {
        self.last_page
    }

    /// Restores the last-page shortcut state.
    pub(crate) fn set_last_page(&mut self, page: u64) {
        self.last_page = page;
    }

    /// L1 TLB miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        self.l1.miss_rate()
    }

    /// Number of page walks performed.
    pub fn walks(&self) -> u64 {
        self.l2.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimingConfig;

    fn tlb() -> Tlb {
        let c = TimingConfig::default();
        Tlb::new(c.tlb1, c.tlb2, c.tlb_walk_latency)
    }

    #[test]
    fn first_touch_walks_then_hits() {
        let mut t = tlb();
        let (o, lat) = t.access(0x1234);
        assert_eq!(o, TlbOutcome::Walk);
        assert_eq!(lat, 128);
        let (o, lat) = t.access(0x1FFF); // same 4K page
        assert_eq!(o, TlbOutcome::L1Hit);
        assert_eq!(lat, 1);
        let (o, _) = t.access(0x2000); // next page
        assert_eq!(o, TlbOutcome::Walk);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut t = tlb();
        // Touch 65 distinct pages mapping across the 8 sets of L1
        // (64 entries); then re-touch the first. It may have been evicted
        // from L1 but must hit L2 (256 entries).
        for p in 0..65u64 {
            t.access(p << 12);
        }
        let (o, _) = t.access(0);
        assert_ne!(o, TlbOutcome::Walk, "L2 TLB must retain the page");
        assert_eq!(t.walks(), 65);
    }

    #[test]
    fn shortcut_matches_full_probe() {
        let c = TimingConfig::default();
        let mut fast = Tlb::new(c.tlb1, c.tlb2, c.tlb_walk_latency);
        let mut slow = Tlb::configured(c.tlb1, c.tlb2, c.tlb_walk_latency, false, false);
        // A stream with heavy same-page repetition plus set-conflicting
        // strides: outcomes, latencies and counters must match.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..20_000u64 {
            let addr = if i % 3 != 0 {
                x & 0xFFFF_F000 | (i & 0xFFF) // repeat recent page
            } else {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % (1 << 24)
            };
            assert_eq!(fast.access(addr), slow.access(addr), "access {i}");
        }
        assert_eq!(fast.walks(), slow.walks());
        assert!((fast.l1_miss_rate() - slow.l1_miss_rate()).abs() < 1e-15);
    }
}
