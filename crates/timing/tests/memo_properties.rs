//! Property tests for the block-timing memo (DESIGN.md §16): random
//! block footprints driven through random eviction / SMC / generation
//! interleavings must leave the pipeline in exactly the state the
//! per-instruction oracle produces, and a deliberately stale memo must
//! be caught by the precondition check rather than silently applied.
//!
//! Driven by a seeded deterministic generator (no crates.io access, so
//! `proptest` is replaced by case loops over a `SmallRng`), mirroring
//! `timing_properties.rs`.

use std::sync::Arc;

use darco_host::stream::{int_reg, DynInst};
use darco_host::{BlockId, BranchKind, Component, ExecClass};
use darco_timing::{BlockMemo, Pipeline, TimingConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One random host instruction. Addresses come from a small pool of
/// cache sets so blocks and background traffic genuinely collide, and
/// branch pcs from a small pool so predictor state is genuinely shared.
fn random_inst(rng: &mut SmallRng, pc: u64) -> DynInst {
    let class = match rng.gen_range(0u32..8) {
        0..=2 => ExecClass::SimpleInt,
        3 => ExecClass::ComplexInt,
        4 => ExecClass::SimpleFp,
        5 => ExecClass::Load,
        6 => ExecClass::Store,
        _ => ExecClass::Branch,
    };
    let mut d = DynInst::plain(pc, class, Component::AppCode)
        .with_srcs(int_reg(rng.gen_range(1u8..8)), int_reg(rng.gen_range(1u8..8)))
        .with_dst(int_reg(rng.gen_range(1u8..8)));
    match class {
        ExecClass::Load | ExecClass::Store => {
            let addr = 0x8000 + u64::from(rng.gen_range(0u32..64)) * 64;
            d = d.with_mem(addr, 4, class == ExecClass::Store);
        }
        ExecClass::Branch => {
            d = d.with_branch(
                BranchKind::CondDirect,
                pc + u64::from(rng.gen_range(1u32..16)) * 4,
                rng.gen_bool(0.5),
            );
        }
        _ => {}
    }
    d
}

/// A random translated block: a handful of instructions at a per-block
/// pc base, shared as an `Arc` exactly like the engine's macro-events.
fn random_block(rng: &mut SmallRng, idx: u32) -> Arc<[DynInst]> {
    let base = 0x10_0000 + u64::from(idx) * 0x1000;
    let n = rng.gen_range(3usize..16);
    let v: Vec<DynInst> = (0..n).map(|i| random_inst(rng, base + i as u64 * 4)).collect();
    v.into()
}

/// Retires `insts` one by one — the per-access oracle the memo's
/// bulk-apply must be indistinguishable from.
fn expand(pipe: &mut Pipeline, insts: &[DynInst]) {
    for d in insts {
        pipe.retire(d);
    }
}

/// Exact pipeline-state fingerprint: `Stats` carries every counter and
/// the f64 cycle/bubble accumulators, and `Debug` on f64 is
/// shortest-roundtrip, so equal strings mean bitwise-equal state.
fn fingerprint(pipe: &Pipeline) -> String {
    format!("{:?}", pipe.snapshot())
}

/// Random blocks replayed through the memo, interleaved with random
/// background traffic, explicit invalidations (the eviction path),
/// generation bumps (retranslation) and stream re-records (SMC): the
/// memoized pipeline must stay bitwise-equal to the per-access oracle
/// after every single step, whichever of the hit / miss / re-record
/// paths each step takes.
#[test]
fn memo_is_transparent_under_random_interleavings() {
    let mut rng = SmallRng::seed_from_u64(0x16_0001);
    let mut total = darco_timing::MemoStats::default();
    for _ in 0..24 {
        let mut gens = [0u32; 4];
        let mut blocks: Vec<Arc<[DynInst]>> = (0..4).map(|i| random_block(&mut rng, i)).collect();
        let mut memo = BlockMemo::new();
        let mut fast = Pipeline::new(TimingConfig::default());
        let mut oracle = Pipeline::new(TimingConfig::default());
        for _ in 0..rng.gen_range(40usize..120) {
            let i = rng.gen_range(0usize..4);
            match rng.gen_range(0u32..10) {
                // Replay: the common case. Several in a row so the
                // steady-state hit path is actually reached.
                0..=5 => {
                    for _ in 0..rng.gen_range(1usize..4) {
                        let id = BlockId { idx: i as u32, gen: gens[i] };
                        memo.replay_or_record(&mut fast, id, &blocks[i]);
                        expand(&mut oracle, &blocks[i]);
                    }
                }
                // Background traffic perturbing caches / predictor /
                // register timestamps underneath recorded footprints.
                6..=7 => {
                    for k in 0..rng.gen_range(1usize..8) {
                        let d = random_inst(&mut rng, 0x20_0000 + k as u64 * 4);
                        fast.retire(&d);
                        oracle.retire(&d);
                    }
                }
                // Eviction: the sink drops the memo, timing unchanged.
                8 => memo.invalidate(i as u32),
                // Retranslation (gen bump) or SMC (new stream): the
                // handle the engine presents changes identity.
                _ => {
                    gens[i] += 1;
                    if rng.gen_bool(0.5) {
                        blocks[i] = random_block(&mut rng, i as u32);
                    }
                }
            }
            assert_eq!(
                fingerprint(&fast),
                fingerprint(&oracle),
                "memoized pipeline diverged from the per-access oracle"
            );
        }
        total.merge(&memo.stats());
    }
    // The schedule must actually exercise every path, or the equality
    // above proves nothing about the one it skipped.
    assert!(total.hits > 0, "no replay ever passed the precondition");
    assert!(total.records > 0, "no block was ever recorded");
    assert!(total.precondition_misses > 0, "no perturbation was ever caught");
    assert!(total.invalidations > 0, "no memo was ever invalidated");
    assert_eq!(total.insts_replayed > 0, total.hits > 0);
}

/// Mutation test: make a recorded memo stale on purpose — evict the
/// exact L1D line its load touched via conflicting traffic — and prove
/// the precondition check catches it (a miss and a re-record, never a
/// hit) while the pipeline still matches the oracle bit for bit.
#[test]
fn stale_memo_is_caught_not_applied() {
    let cfg = TimingConfig::default();
    // One load at a known address, plus enough filler for a realistic
    // footprint.
    let target = 0x4_0000u64;
    let block: Arc<[DynInst]> = vec![
        DynInst::plain(0x100, ExecClass::Load, Component::AppCode)
            .with_dst(int_reg(2))
            .with_mem(target, 4, false),
        DynInst::plain(0x104, ExecClass::SimpleInt, Component::AppCode)
            .with_srcs(int_reg(2), u8::MAX)
            .with_dst(int_reg(3)),
    ]
    .into();
    let id = BlockId { idx: 7, gen: 0 };
    let mut memo = BlockMemo::new();
    let mut fast = Pipeline::new(cfg.clone());
    let mut oracle = Pipeline::new(cfg.clone());

    // Warm up to steady state: early replays legitimately re-record
    // while the state the block touches is still settling — cache and
    // TLB fill, IQ-ring occupancy growth, and the cold-miss completion
    // timestamp slowly ageing out relative to the advancing issue
    // clock. A tight two-instruction loop needs on the order of the
    // memory latency in iterations before its footprint repeats.
    let mut warm = 0;
    while memo.stats().hits == 0 {
        assert!(warm < 512, "block never reached a steady-state hit");
        memo.replay_or_record(&mut fast, id, &block);
        expand(&mut oracle, &block);
        warm += 1;
    }
    assert_eq!(fingerprint(&fast), fingerprint(&oracle));

    // Evict the touched line: `ways` distinct tags into its L1D set
    // (set stride = sets * block), each from its own pc so the stride
    // prefetcher cannot pull the victim back in.
    let stride = u64::from(cfg.l1d.sets() * cfg.l1d.block);
    for k in 1..=u64::from(cfg.l1d.ways) {
        let d = DynInst::plain(0x900 + k * 4, ExecClass::Load, Component::AppCode)
            .with_dst(int_reg(4))
            .with_mem(target + k * stride, 4, false);
        fast.retire(&d);
        oracle.retire(&d);
    }

    // The memo is now stale: its footprint says the load hits L1D, the
    // cache says otherwise. Applying it would corrupt the cycle count —
    // the precondition check must reject it instead.
    let before = memo.stats();
    memo.replay_or_record(&mut fast, id, &block);
    expand(&mut oracle, &block);
    let after = memo.stats();
    assert_eq!(after.hits, before.hits, "stale memo was applied as a hit");
    assert_eq!(
        after.precondition_misses,
        before.precondition_misses + 1,
        "staleness must be detected by the precondition check"
    );
    assert_eq!(after.records, before.records + 1, "a miss re-records the footprint");
    assert_eq!(fingerprint(&fast), fingerprint(&oracle));

    // And the memo recovers: the stale-miss re-record itself refills
    // the evicted line, so one more settling replay may re-record
    // before the footprint hits again.
    let mut rewarm = 0;
    while memo.stats().hits == after.hits {
        assert!(rewarm < 512, "memo never recovered after staleness");
        memo.replay_or_record(&mut fast, id, &block);
        expand(&mut oracle, &block);
        rewarm += 1;
    }
    assert_eq!(fingerprint(&fast), fingerprint(&oracle));
}
