//! Property tests for the timing substrates: caches, PLRU, predictor
//! and TLB invariants over random access streams.

use darco_host::BranchKind;
use darco_timing::cache::{Cache, Lookup};
use darco_timing::config::CacheParams;
use darco_timing::plru::PlruSet;
use darco_timing::predictor::Predictor;
use darco_timing::TimingConfig;
use proptest::prelude::*;

proptest! {
    /// A line is always present immediately after being accessed, for
    /// any legal cache shape.
    #[test]
    fn hit_after_access_any_shape(
        ways_log in 0u32..4,
        sets_log in 0u32..6,
        block_log in 4u32..8,
        addrs in proptest::collection::vec(any::<u32>(), 1..100),
    ) {
        let ways = 1 << ways_log;
        let block = 1 << block_log;
        let sets = 1u32 << sets_log;
        let mut c = Cache::new(CacheParams {
            size: sets * ways * block,
            block,
            ways,
            hit_latency: 1,
        });
        for a in addrs {
            c.access(a as u64);
            prop_assert_eq!(c.access(a as u64), Lookup::Hit);
            prop_assert!(c.contains(a as u64));
        }
    }

    /// Miss count never exceeds access count, and the rate is in [0, 1].
    #[test]
    fn cache_counters_consistent(addrs in proptest::collection::vec(any::<u32>(), 1..300)) {
        let mut c = Cache::new(TimingConfig::default().l1d);
        for a in &addrs {
            c.access(*a as u64);
        }
        prop_assert!(c.misses() <= c.accesses());
        prop_assert_eq!(c.accesses(), addrs.len() as u64);
        let r = c.miss_rate();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// The PLRU victim is always a legal way and never the way just
    /// touched (for associativity >= 2).
    #[test]
    fn plru_victim_in_range(
        ways_log in 1u32..6,
        touches in proptest::collection::vec(any::<u32>(), 1..200),
    ) {
        let ways = 1u32 << ways_log;
        let mut p = PlruSet::default();
        for t in touches {
            let w = t % ways;
            p.touch(w, ways);
            let v = p.victim(ways);
            prop_assert!(v < ways);
            prop_assert_ne!(v, w, "victim equals the MRU way");
        }
    }

    /// The predictor's misprediction count never exceeds its branch
    /// count, and a perfectly stable direct branch converges to zero
    /// further mispredictions.
    #[test]
    fn predictor_counters_and_convergence(
        pcs in proptest::collection::vec(0u64..1024, 1..50),
    ) {
        let mut p = Predictor::new(12, 1024);
        for &pc in &pcs {
            for _ in 0..4 {
                p.predict_and_update(pc * 4, BranchKind::UncondDirect, true, pc * 8 + 4);
            }
        }
        prop_assert!(p.mispredicts() <= p.branches());
        // Re-visit every site: all targets cached now (BTB is 1024
        // entries and pcs < 1024*4 map to distinct slots).
        let before = p.mispredicts();
        for &pc in &pcs {
            p.predict_and_update(pc * 4, BranchKind::UncondDirect, true, pc * 8 + 4);
        }
        prop_assert_eq!(p.mispredicts(), before, "stable targets must not mispredict");
    }
}
