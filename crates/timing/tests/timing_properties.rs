//! Property tests for the timing substrates: caches, PLRU, predictor
//! and TLB invariants over random access streams. Driven by a seeded
//! deterministic generator (no crates.io access, so `proptest` is
//! replaced by case loops over a `SmallRng`).

use darco_host::BranchKind;
use darco_timing::cache::{Cache, Lookup};
use darco_timing::config::CacheParams;
use darco_timing::plru::PlruSet;
use darco_timing::predictor::Predictor;
use darco_timing::TimingConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A line is always present immediately after being accessed, for
/// any legal cache shape.
#[test]
fn hit_after_access_any_shape() {
    let mut rng = SmallRng::seed_from_u64(0x71_0001);
    for _ in 0..64 {
        let ways = 1u32 << rng.gen_range(0u32..4);
        let block = 1u32 << rng.gen_range(4u32..8);
        let sets = 1u32 << rng.gen_range(0u32..6);
        let mut c =
            Cache::new(CacheParams { size: sets * ways * block, block, ways, hit_latency: 1 });
        let n = rng.gen_range(1usize..100);
        for _ in 0..n {
            let a: u32 = rng.gen();
            c.access(a as u64);
            assert_eq!(c.access(a as u64), Lookup::Hit);
            assert!(c.contains(a as u64));
        }
    }
}

/// Miss count never exceeds access count, and the rate is in [0, 1].
#[test]
fn cache_counters_consistent() {
    let mut rng = SmallRng::seed_from_u64(0x71_0002);
    for _ in 0..32 {
        let mut c = Cache::new(TimingConfig::default().l1d);
        let n = rng.gen_range(1usize..300);
        for _ in 0..n {
            let a: u32 = rng.gen();
            c.access(a as u64);
        }
        assert!(c.misses() <= c.accesses());
        assert_eq!(c.accesses(), n as u64);
        let r = c.miss_rate();
        assert!((0.0..=1.0).contains(&r));
    }
}

/// The PLRU victim is always a legal way and never the way just
/// touched (for associativity >= 2).
#[test]
fn plru_victim_in_range() {
    let mut rng = SmallRng::seed_from_u64(0x71_0003);
    for _ in 0..64 {
        let ways = 1u32 << rng.gen_range(1u32..6);
        let mut p = PlruSet::default();
        let n = rng.gen_range(1usize..200);
        for _ in 0..n {
            let w = rng.gen::<u32>() % ways;
            p.touch(w, ways);
            let v = p.victim(ways);
            assert!(v < ways);
            assert_ne!(v, w, "victim equals the MRU way");
        }
    }
}

/// The predictor's misprediction count never exceeds its branch
/// count, and a perfectly stable direct branch converges to zero
/// further mispredictions.
#[test]
fn predictor_counters_and_convergence() {
    let mut rng = SmallRng::seed_from_u64(0x71_0004);
    for _ in 0..32 {
        let mut p = Predictor::new(12, 1024);
        let n = rng.gen_range(1usize..50);
        let pcs: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1024)).collect();
        for &pc in &pcs {
            for _ in 0..4 {
                p.predict_and_update(pc * 4, BranchKind::UncondDirect, true, pc * 8 + 4);
            }
        }
        assert!(p.mispredicts() <= p.branches());
        // Re-visit every site: all targets cached now (BTB is 1024
        // entries and pcs < 1024*4 map to distinct slots).
        let before = p.mispredicts();
        for &pc in &pcs {
            p.predict_and_update(pc * 4, BranchKind::UncondDirect, true, pc * 8 + 4);
        }
        assert_eq!(p.mispredicts(), before, "stable targets must not mispredict");
    }
}
