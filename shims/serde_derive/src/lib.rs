//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this workspace actually uses — non-generic structs
//! (named, tuple, unit) and enums (unit, tuple, and struct variants) —
//! without `syn`/`quote`, by walking the raw token stream. Generated
//! code targets the vendored `serde` shim's `to_value`/`from_value`
//! traits and follows serde's externally-tagged enum representation
//! and transparent newtype structs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or of one enum variant.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

struct Input {
    name: String,
    kind: Kind,
}

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attrs(toks: &mut Toks) {
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        // The bracketed attribute body.
        toks.next();
    }
}

fn skip_vis(toks: &mut Toks) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    // pub(crate) / pub(super) restriction.
                    toks.next();
                }
            }
        }
    }
}

/// Consumes tokens up to (and including) a comma at angle-bracket depth
/// zero. Groups are single tokens, so only `<`/`>` need tracking.
/// Returns true if any token (i.e. a field) was consumed before the
/// comma or end of stream.
fn skip_past_comma(toks: &mut Toks) -> bool {
    let mut depth = 0i32;
    let mut any = false;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return true,
                _ => {}
            }
        }
        any = true;
    }
    any
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut toks: Toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut toks);
        skip_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                // Consume ':' then the type up to the next field.
                let colon = toks.next();
                assert!(
                    matches!(&colon, Some(TokenTree::Punct(p)) if p.as_char() == ':'),
                    "serde shim derive: expected `:` after field `{}`",
                    fields.last().unwrap()
                );
                skip_past_comma(&mut toks);
            }
            Some(other) => panic!("serde shim derive: unexpected token in fields: {other}"),
            None => break,
        }
    }
    fields
}

fn parse_tuple_arity(body: TokenStream) -> usize {
    let mut toks: Toks = body.into_iter().peekable();
    let mut arity = 0;
    loop {
        skip_attrs(&mut toks);
        skip_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        if skip_past_comma(&mut toks) {
            arity += 1;
        } else {
            break;
        }
    }
    arity
}

fn parse_shape_after_name(toks: &mut Toks) -> Shape {
    match toks.peek() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let g = match toks.next() {
                Some(TokenTree::Group(g)) => g,
                _ => unreachable!(),
            };
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let g = match toks.next() {
                Some(TokenTree::Group(g)) => g,
                _ => unreachable!(),
            };
            Shape::Tuple(parse_tuple_arity(g.stream()))
        }
        _ => Shape::Unit,
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut toks: Toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        assert!(p.as_char() != '<', "serde shim derive: generic type `{name}` not supported");
    }
    let kind = match kw.as_str() {
        "struct" => Kind::Struct(parse_shape_after_name(&mut toks)),
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            let mut vt: Toks = body.into_iter().peekable();
            let mut variants = Vec::new();
            loop {
                skip_attrs(&mut vt);
                match vt.next() {
                    Some(TokenTree::Ident(id)) => {
                        let vname = id.to_string();
                        let shape = parse_shape_after_name(&mut vt);
                        variants.push((vname, shape));
                        // Consume trailing `,` (and any `= disc`).
                        skip_past_comma(&mut vt);
                    }
                    Some(other) => {
                        panic!("serde shim derive: unexpected token in enum body: {other}")
                    }
                    None => break,
                }
            }
            Kind::Enum(variants)
        }
        other => panic!("serde shim derive: cannot derive for `{other}`"),
    };
    Input { name, kind }
}

fn obj_literal(pairs: &[(String, String)]) -> String {
    let items: Vec<String> =
        pairs.iter().map(|(k, v)| format!("({k:?}.to_string(), {v})")).collect();
    format!("::serde::Value::Obj(vec![{}])", items.join(", "))
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| (f.clone(), format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            obj_literal(&pairs)
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (v, shape) in variants {
                let arm = match shape {
                    Shape::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),")
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Obj(vec![({v:?}.to_string(), {inner})]),",
                            binds = binds.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let pairs: Vec<(String, String)> = fields
                            .iter()
                            .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                            .collect();
                        let inner = obj_literal(&pairs);
                        format!(
                            "{name}::{v} {{ {fields} }} => ::serde::Value::Obj(vec![({v:?}.to_string(), {inner})]),",
                            fields = fields.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => format!("Ok({name})"),
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?")).collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Arr(xs) if xs.len() == {n} => Ok({name}({items})),\n\
                     other => Err(::serde::DeError(format!(\"expected {n}-tuple for {name}, got {{other:?}}\"))),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(v, {f:?})?)?")
                })
                .collect();
            format!("Ok({name} {{ {} }})", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("{v:?} => return Ok({name}::{v}),"));
                        // Also accept the tagged-null form for robustness.
                        tagged_arms.push_str(&format!("{v:?} => return Ok({name}::{v}),"));
                    }
                    Shape::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "{v:?} => return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{v:?} => match inner {{\n\
                                 ::serde::Value::Arr(xs) if xs.len() == {n} => return Ok({name}::{v}({items})),\n\
                                 other => return Err(::serde::DeError(format!(\"bad payload for {name}::{v}: {{other:?}}\"))),\n\
                             }},",
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::field(inner, {f:?})?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{v:?} => return Ok({name}::{v} {{ {items} }}),",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} _ => {{}} }},\n\
                     ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{ {tagged_arms} _ => {{}} }}\n\
                     }}\n\
                     _ => {{}}\n\
                 }}\n\
                 Err(::serde::DeError(format!(\"no matching variant of {name} for {{v:?}}\")))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde shim derive: generated Serialize impl failed to parse")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde shim derive: generated Deserialize impl failed to parse")
}
