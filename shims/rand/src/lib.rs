//! Offline stand-in for `rand` 0.8.
//!
//! Provides [`rngs::SmallRng`] (a SplitMix64 generator) plus the
//! [`Rng`]/[`SeedableRng`] trait subset this workspace uses:
//! `seed_from_u64`, `gen_range` over half-open integer ranges,
//! `gen_bool`, and `gen::<f64>()`. Deterministic for a given seed,
//! which is all the workload generators need.

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy {
    /// Maps a raw 64-bit draw into `lo..hi`.
    fn from_draw(draw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_draw(draw: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let off = (draw as u128) % span;
                ((lo as i128) + (off as i128)) as $t
            }
        }
    )*};
}

sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn from_draw(draw: u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Types that [`Rng::gen`] can produce from the standard distribution.
pub trait Standard: Sized {
    /// Maps a raw 64-bit draw into a value.
    fn from_draw(draw: u64) -> Self;
}

impl Standard for f64 {
    fn from_draw(draw: u64) -> Self {
        (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_draw(draw: u64) -> Self {
        (draw >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_draw(draw: u64) -> Self {
        draw & 1 == 1
    }
}

impl Standard for u64 {
    fn from_draw(draw: u64) -> Self {
        draw
    }
}

impl Standard for u32 {
    fn from_draw(draw: u64) -> Self {
        (draw >> 32) as u32
    }
}

/// High-level sampling interface, blanket-implemented for all cores.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::from_draw(self.next_u64(), range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::from_draw(self.next_u64()) < p
    }

    /// Samples from the standard distribution.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_draw(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&x));
            let y = rng.gen_range(3usize..9);
            assert!((3..9).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
