//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON through the vendored `serde` shim's
//! [`serde::Value`] model. Covers the API surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`].

use serde::{Deserialize, Serialize, Value};

/// Error produced by JSON parsing or model conversion.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Keep integral floats readable ("3.0" rather than "3").
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => escape_into(s, out),
        Value::Arr(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(x, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(x, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for types in this workspace; the `Result` mirrors the
/// real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails for types in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|_| self.err("invalid number"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(xs));
                }
                loop {
                    xs.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(xs));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected `{}`", other as char))),
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_value_tree() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("x\n\"y\"".into())),
            ("n".into(), Value::UInt(7)),
            ("neg".into(), Value::Int(-3)),
            ("f".into(), Value::Float(1.5)),
            ("arr".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 x").is_err());
        assert!(from_str::<u32>("[1").is_err());
    }
}
