//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal replacement exposing the subset of the serde API
//! the project uses: `#[derive(Serialize, Deserialize)]` on plain
//! structs and enums, driven through a small self-describing [`Value`]
//! model that `serde_json` (also vendored) renders and parses.
//!
//! The design intentionally differs from real serde (no visitor
//! machinery): `Serialize` maps a value *to* a [`Value`] tree and
//! `Deserialize` maps a [`Value`] tree back. Representations follow
//! serde's external tagging so the JSON output looks the same as real
//! serde's for the types in this workspace.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64` survives round-trips).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, and a path hint.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetches a required object field (used by derived code).
///
/// # Errors
///
/// Returns [`DeError`] if `v` is not an object or lacks `name`.
pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
    v.get(name).ok_or_else(|| DeError(format!("missing field `{name}`")))
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Int(n) => Ok(n as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Float(n) if n.fract() == 0.0 => Ok(n as $t),
                    ref other => Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) if n >= 0 => Ok(n as $t),
                    Value::Float(n) if n.fract() == 0.0 && n >= 0.0 => Ok(n as $t),
                    ref other => Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(n) => Ok(n),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            ref other => Err(DeError(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(xs) if xs.len() == N => {
                let mut out = [T::default(); N];
                for (slot, x) in out.iter_mut().zip(xs) {
                    *slot = T::from_value(x)?;
                }
                Ok(out)
            }
            other => Err(DeError(format!("expected array of {N}, got {other:?}"))),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($t:ident : $i:tt),+) => $n:literal;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(xs) if xs.len() == $n => {
                        Ok(($($t::from_value(&xs[$i])?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected {}-tuple, got {other:?}", $n
                    ))),
                }
            }
        }
    )*};
}

ser_tuple! {
    (A: 0) => 1;
    (A: 0, B: 1) => 2;
    (A: 0, B: 1, C: 2) => 3;
    (A: 0, B: 1, C: 2, D: 3) => 4;
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        let arr = [[1.5f64; 2]; 3];
        assert_eq!(<[[f64; 2]; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn missing_field_is_an_error() {
        let obj = Value::Obj(vec![("a".into(), Value::Int(1))]);
        assert!(field(&obj, "a").is_ok());
        assert!(field(&obj, "b").is_err());
    }
}
