//! Offline stand-in for `criterion`.
//!
//! Supports the API surface the bench targets use — `Criterion`,
//! `benchmark_group`/`bench_function`/`iter`, `Throughput`,
//! `criterion_group!` (both forms) and `criterion_main!` — and, when
//! actually run, times a few iterations of each body with `Instant`
//! and prints a coarse ns/iter figure. No statistics, warm-up, or
//! HTML reports; the goal is that `cargo bench` still produces usable
//! relative numbers offline.

use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared measurement throughput for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times repeated executions of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, elapsed_ns: 0 };
    f(&mut b);
    let per_iter = if iters > 0 { b.elapsed_ns / u128::from(iters) } else { 0 };
    println!("bench {label:<40} {per_iter:>12} ns/iter ({iters} iters)");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many iterations each body is timed for.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size as u64, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the declared throughput (informational only here).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.criterion.sample_size as u64, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        g.finish();
        c.bench_function("mul", |b| b.iter(|| black_box(3u64) * 3));
    }

    criterion_group!(plain, body);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(5);
        targets = body,
    }

    #[test]
    fn groups_run() {
        plain();
        configured();
    }
}
